// The robot bestiary: one client model per malicious-robot family the
// paper names (§1) plus the off-line browser exception (§2.2) and the
// §4.1 "intelligent bot" that executes JavaScript and synthesizes events.
#ifndef ROBODET_SRC_SIM_ROBOTS_H_
#define ROBODET_SRC_SIM_ROBOTS_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/html/document.h"
#include "src/js/interpreter.h"
#include "src/sim/client.h"
#include "src/site/site_model.h"

namespace robodet {

struct RobotConfig {
  // Mean delay between requests; robots are much faster than humans.
  TimeMs request_interval_mean = 400;
  int max_requests = 150;
  // Robots stop early after this many blocked responses.
  int give_up_after_blocks = 5;
};

// Search-engine-style crawler: HTML only, breadth-first, follows every
// link on the page — including the invisible trap link.
class CrawlerClient : public Client {
 public:
  CrawlerClient(ClientIdentity identity, Rng rng, const SiteModel* site, RobotConfig config,
                bool polite = false);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  bool polite_;  // Polite crawlers fetch /robots.txt first and honor it.
  bool fetched_robots_txt_ = false;
  std::deque<Url> frontier_;
  std::set<std::string> visited_;
  int blocks_ = 0;
};

// Email-address harvester: random-walk over HTML pages, never fetches
// embedded objects, high request rate.
class EmailHarvesterClient : public Client {
 public:
  EmailHarvesterClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                       RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  Url current_;
  std::vector<std::string> candidates_;
  int blocks_ = 0;
};

// Referrer spammer: hammers pages with forged Referer headers pointing at
// the site being promoted; never cares about the response content.
class ReferrerSpammerClient : public Client {
 public:
  ReferrerSpammerClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                        RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  std::string spam_referrer_;
  std::vector<std::string> trail_;  // Pages already hit (for audit visits).
  // Reconnaissance budget: the bot first browses like a reader to find
  // pages worth spamming, so the session's early window looks organic.
  int recon_remaining_ = 0;
  std::string recon_page_;
  int blocks_ = 0;
};

// Click-fraud generator: repeated CGI "click-through" requests with
// fabricated referrers and affiliate parameters.
class ClickFraudClient : public Client {
 public:
  ClickFraudClient(ClientIdentity identity, Rng rng, const SiteModel* site, RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  int affiliate_id_ = 0;
  std::string landing_page_;
  int clicks_since_landing_ = 0;
  int blocks_ = 0;
};

// Vulnerability scanner: probes a dictionary of exploit paths, producing
// mostly 404s and CGI hits.
class VulnScannerClient : public Client {
 public:
  VulnScannerClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                    RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  size_t next_probe_ = 0;
  int blocks_ = 0;
};

// Off-line browser / site mirrorer: downloads *everything* — embedded CSS
// (so it passes the CSS probe), images, script files (without executing
// them) — and follows every link including hidden ones. The paper's
// explicit exception case.
class OfflineBrowserClient : public Client {
 public:
  OfflineBrowserClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                       RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  std::deque<Url> frontier_;
  std::set<std::string> visited_;
  int blocks_ = 0;
};

// JavaScript-capable robot (§4.1's hypothetical attacker, which we build
// to measure the defense honestly).
enum class SmartBotMode {
  // Lexically scrape URLs out of the beacon script and fetch ONE at
  // random: caught with probability m/(m+1) by the decoys.
  kScrapeOne,
  // Fetch every URL in the script ("blindly fetches embedded objects"):
  // always trips a decoy when m >= 1.
  kScrapeAll,
  // Actually execute the script and synthesize a mouse event: fetches only
  // the real beacon and evades human-activity detection.
  kInterpret,
};

struct SmartBotConfig {
  RobotConfig robot;
  SmartBotMode mode = SmartBotMode::kScrapeOne;
  // Fetch the CSS probe to blend in with browsers.
  bool fetch_css = true;
  // Fetch embedded images (and the favicon, once) to blend in further.
  bool fetch_images = false;
  // Run the inline UA-echo script (kInterpret only).
  bool run_inline_scripts = true;
  // Engine-reported agent string; if it differs from the forged header the
  // UA-echo comparison flags a browser-type mismatch.
  std::string engine_agent = "CustomBotEngine/0.9";
  // Align the header with the engine string (evades the mismatch check).
  bool align_header_with_engine = false;
  // kInterpret only: also fire the page's mouse handler with synthetic
  // events — the §4.1 future bot. Today's JS-capable robots execute
  // scripts but produce no events (the S_JS − S_MM population).
  bool synthesize_events = false;
};

class SmartBotClient : public Client {
 public:
  SmartBotClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                 SmartBotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  void ProcessPage(Gateway& gateway, const Response& response);

  const SiteModel* site_;
  SmartBotConfig config_;
  Url current_page_;
  std::deque<Url> pending_fetches_;
  std::vector<std::string> next_pages_;
  std::string handler_code_;
  bool favicon_fetched_ = false;
  int blocks_ = 0;
};

// Link checker (§1's benign example: "performing repetitive tasks such
// as checking the validity of URL links"): fetches a page, then issues
// HEAD requests for every link on it. Identifies itself honestly and is
// HTML/HEAD-only — the classic high-HEAD%, probe-deaf profile.
class LinkCheckerClient : public Client {
 public:
  LinkCheckerClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                    RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  std::deque<Url> pages_;
  std::deque<Url> to_check_;
  std::set<std::string> seen_;
  int blocks_ = 0;
};

// Bulletin-board spammer (§1: "spamming bulletin boards"): loads the
// board page once (so its POST referrer is self-consistent), then floods
// the post endpoint with link spam.
class BulletinSpamClient : public Client {
 public:
  BulletinSpamClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                     RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  bool loaded_board_ = false;
  std::string spam_payload_;
  int blocks_ = 0;
};

// DDoS zombie (§1 use case (1)): one compromised machine in a flooding
// botnet. Hammers pages and CGI endpoints far faster than any human,
// fetching nothing embedded; the rate-limiting policy is the defense.
class ZombieFloodClient : public Client {
 public:
  ZombieFloodClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                    RobotConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

 private:
  const SiteModel* site_;
  RobotConfig config_;
  int blocks_ = 0;
};

// Extracts every string literal that looks like a URL from JavaScript
// source — the scraper's tool. Exposed for tests.
std::vector<std::string> ScrapeUrlsFromScript(const std::string& source);

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_ROBOTS_H_
