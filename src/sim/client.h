// Abstract simulated client. The simulator drives each client through
// discrete steps; a step typically issues one HTTP request (so that
// interleavings across clients are realistic) and returns the delay until
// the client's next step.
#ifndef ROBODET_SRC_SIM_CLIENT_H_
#define ROBODET_SRC_SIM_CLIENT_H_

#include <optional>

#include "src/sim/gateway.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace robodet {

class Client {
 public:
  explicit Client(ClientIdentity identity, Rng rng)
      : identity_(std::move(identity)), rng_(std::move(rng)) {}
  virtual ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const ClientIdentity& identity() const { return identity_; }
  const FetchStats& stats() const { return stats_; }

  // Performs the next action. Returns the delay until the next step, or
  // nullopt when this client is finished.
  virtual std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) = 0;

 protected:
  Rng& rng() { return rng_; }
  FetchStats* stats_ptr() { return &stats_; }

 private:
  ClientIdentity identity_;
  Rng rng_;
  FetchStats stats_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_CLIENT_H_
