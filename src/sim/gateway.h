// The client-side view of the proxy: simulated clients issue requests
// through a Gateway, which stamps them with simulated time and the
// client's identity and returns the proxy's response.
#ifndef ROBODET_SRC_SIM_GATEWAY_H_
#define ROBODET_SRC_SIM_GATEWAY_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/http/request.h"
#include "src/obs/metrics.h"
#include "src/proxy/proxy_server.h"
#include "src/util/clock.h"

namespace robodet {

struct ClientIdentity {
  IpAddress ip;
  // What the client puts in the User-Agent header (forgeable).
  std::string user_agent;
  // Ground truth for experiments.
  bool is_human = false;
  std::string type_name;
};

struct FetchStats {
  uint64_t requests = 0;
  uint64_t blocked = 0;
  uint64_t ok = 0;
  uint64_t redirects = 0;
  uint64_t errors = 0;
  // Requests served below full instrumentation (any ladder rung != full),
  // and the subset rejected outright by overload shedding.
  uint64_t degraded = 0;
  uint64_t shed = 0;
};

class Gateway {
 public:
  // Picks the proxy node that will see a given client's request (identity
  // function for single-node setups; ProxyCluster::Route for clusters).
  using ProxyRouter = std::function<ProxyServer*(const ClientIdentity&)>;

  Gateway(ProxyServer* proxy, SimClock* clock) : proxy_(proxy), clock_(clock) {}

  // Cluster form: `representative` answers config queries (all nodes share
  // one ProxyConfig); `router` picks the node per request.
  Gateway(ProxyServer* representative, ProxyRouter router, SimClock* clock)
      : proxy_(representative), router_(std::move(router)), clock_(clock) {}

  struct FetchResult {
    Response response;
    bool blocked = false;
  };

  FetchResult Fetch(const ClientIdentity& id, Method method, const Url& url,
                    std::string_view referrer, FetchStats* stats,
                    const Headers* extra_headers = nullptr);

  // Form submission: POST with a body.
  FetchResult Post(const ClientIdentity& id, const Url& url, std::string body,
                   std::string_view referrer, FetchStats* stats);

  TimeMs Now() const { return clock_->Now(); }
  const ProxyConfig& proxy_config() const { return proxy_->config(); }

  // Counts client-side fetch outcomes into `registry` as
  // robodet_gateway_fetches_total{outcome=ok|blocked|redirect|error}.
  // This is the client's view — it differs from the proxy's request
  // counters when a cluster router fans requests across nodes.
  void BindMetrics(MetricsRegistry* registry);

 private:
  struct Metrics {
    Counter* ok = nullptr;
    Counter* blocked = nullptr;
    Counter* redirect = nullptr;
    Counter* error = nullptr;
    Counter* degraded = nullptr;
  };

  void RecordOutcome(const ProxyServer::Result& result, FetchStats* stats);

  ProxyServer* proxy_;  // Not owned; representative node for config reads.
  ProxyRouter router_;  // Empty for single-node gateways.
  SimClock* clock_;     // Not owned.
  Metrics metrics_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_GATEWAY_H_
