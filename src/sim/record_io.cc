#include "src/sim/record_io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "src/util/strings.h"

namespace robodet {
namespace {

// Hard limits for the load path: CSV files come from outside the process
// (operators move captures between machines), so the reader treats them as
// untrusted and bounds every dimension an attacker could inflate.
constexpr size_t kMaxCsvLineBytes = 64 * 1024;
constexpr size_t kMaxCsvSessions = 4u << 20;
constexpr size_t kMaxCsvEventsPerSession = 1u << 16;

constexpr char kSessionsHeader[] =
    "session_id,client_type,truly_human,request_count,instrumented_pages,"
    "css_probe_at,js_download_at,js_executed_at,mouse_event_at,wrong_key_at,"
    "hidden_link_at,ua_mismatch_at,captcha_passed_at,captcha_failed_at,"
    "robots_txt_at,audio_probe_at,ua_echo_agent,first_request_ms,last_request_ms";

constexpr char kEventsHeader[] =
    "session_id,seq,kind,status_class,is_head,has_referrer,unseen_referrer,"
    "is_embedded,is_link_follow,is_favicon";

// The only free-text field is ua_echo_agent; it is sanitized (no spaces or
// commas survive the echo path), but escape commas defensively anyway.
std::string CsvField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c != ',' && c != '\n' && c != '\r') {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool WriteSessionsCsv(const std::string& path, const std::vector<SessionRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << kSessionsHeader << '\n';
  for (const SessionRecord& r : records) {
    const SessionSignals& s = r.signals();
    out << r.session_id << ',' << CsvField(r.client_type) << ',' << (r.truly_human ? 1 : 0)
        << ',' << r.request_count() << ',' << r.observation.instrumented_pages << ','
        << s.css_probe_at << ',' << s.js_download_at << ',' << s.js_executed_at << ','
        << s.mouse_event_at << ',' << s.wrong_key_at << ',' << s.hidden_link_at << ','
        << s.ua_mismatch_at << ',' << s.captcha_passed_at << ',' << s.captcha_failed_at << ','
        << s.robots_txt_at << ',' << s.audio_probe_at << ',' << CsvField(s.ua_echo_agent)
        << ',' << r.first_request << ',' << r.last_request << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteEventsCsv(const std::string& path, const std::vector<SessionRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << kEventsHeader << '\n';
  for (const SessionRecord& r : records) {
    for (size_t i = 0; i < r.events.size(); ++i) {
      const RequestEvent& e = r.events[i];
      out << r.session_id << ',' << i << ',' << static_cast<int>(e.kind) << ','
          << static_cast<int>(e.status_class) << ',' << (e.is_head ? 1 : 0) << ','
          << (e.has_referrer ? 1 : 0) << ',' << (e.unseen_referrer ? 1 : 0) << ','
          << (e.is_embedded ? 1 : 0) << ',' << (e.is_link_follow ? 1 : 0) << ','
          << (e.is_favicon ? 1 : 0) << '\n';
    }
  }
  return static_cast<bool>(out);
}

bool ReadRecordsCsv(const std::string& sessions_path, const std::string& events_path,
                    std::vector<SessionRecord>* out) {
  out->clear();
  std::ifstream sessions(sessions_path);
  if (!sessions) {
    return false;
  }
  std::string line;
  if (!std::getline(sessions, line) || line != kSessionsHeader) {
    return false;
  }
  std::map<uint64_t, size_t> index_by_id;
  while (std::getline(sessions, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.size() > kMaxCsvLineBytes || out->size() >= kMaxCsvSessions) {
      return false;
    }
    const std::vector<std::string> f = Split(line, ',');
    if (f.size() != 19) {
      return false;
    }
    SessionRecord r;
    const auto id = ParseU64(f[0]);
    if (!id.has_value()) {
      return false;
    }
    r.session_id = *id;
    r.client_type = f[1];
    r.truly_human = f[2] == "1";
    // Numeric columns 3..15 are non-negative ints; reject values that would
    // wrap on the narrowing cast.
    auto as_int = [&f](size_t i, int* v) {
      const auto parsed = ParseU64(f[i]);
      if (!parsed.has_value() ||
          *parsed > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
        return false;
      }
      *v = static_cast<int>(*parsed);
      return true;
    };
    SessionSignals& s = r.observation.signals;
    int ok = 1;
    ok &= as_int(3, &r.observation.request_count) ? 1 : 0;
    ok &= as_int(4, &r.observation.instrumented_pages) ? 1 : 0;
    ok &= as_int(5, &s.css_probe_at) ? 1 : 0;
    ok &= as_int(6, &s.js_download_at) ? 1 : 0;
    ok &= as_int(7, &s.js_executed_at) ? 1 : 0;
    ok &= as_int(8, &s.mouse_event_at) ? 1 : 0;
    ok &= as_int(9, &s.wrong_key_at) ? 1 : 0;
    ok &= as_int(10, &s.hidden_link_at) ? 1 : 0;
    ok &= as_int(11, &s.ua_mismatch_at) ? 1 : 0;
    ok &= as_int(12, &s.captcha_passed_at) ? 1 : 0;
    ok &= as_int(13, &s.captcha_failed_at) ? 1 : 0;
    ok &= as_int(14, &s.robots_txt_at) ? 1 : 0;
    ok &= as_int(15, &s.audio_probe_at) ? 1 : 0;
    if (ok == 0) {
      return false;
    }
    s.ua_echo_agent = f[16];
    const auto first = ParseU64(f[17]);
    const auto last = ParseU64(f[18]);
    constexpr uint64_t kMaxTime =
        static_cast<uint64_t>(std::numeric_limits<TimeMs>::max());
    if (!first.has_value() || !last.has_value() || *first > kMaxTime || *last > kMaxTime) {
      return false;
    }
    r.first_request = static_cast<TimeMs>(*first);
    r.last_request = static_cast<TimeMs>(*last);
    index_by_id[r.session_id] = out->size();
    out->push_back(std::move(r));
  }

  std::ifstream events(events_path);
  if (!events) {
    return false;
  }
  if (!std::getline(events, line) || line != kEventsHeader) {
    return false;
  }
  while (std::getline(events, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.size() > kMaxCsvLineBytes) {
      return false;
    }
    const std::vector<std::string> f = Split(line, ',');
    if (f.size() != 10) {
      return false;
    }
    const auto id = ParseU64(f[0]);
    if (!id.has_value()) {
      return false;
    }
    const auto it = index_by_id.find(*id);
    if (it == index_by_id.end()) {
      return false;  // Event for an unknown session.
    }
    if ((*out)[it->second].events.size() >= kMaxCsvEventsPerSession) {
      return false;
    }
    const auto kind = ParseU64(f[2]);
    const auto status = ParseU64(f[3]);
    // The kind column indexes the ResourceKind enum; casting an arbitrary
    // integer into the enum would hand out-of-range values to every switch
    // downstream. Status classes are single digits (0 = unknown).
    if (!kind.has_value() || *kind > static_cast<uint64_t>(ResourceKind::kOther) ||
        !status.has_value() || *status > 9) {
      return false;
    }
    RequestEvent e;
    e.kind = static_cast<ResourceKind>(*kind);
    e.status_class = static_cast<uint8_t>(*status);
    e.is_head = f[4] == "1";
    e.has_referrer = f[5] == "1";
    e.unseen_referrer = f[6] == "1";
    e.is_embedded = f[7] == "1";
    e.is_link_follow = f[8] == "1";
    e.is_favicon = f[9] == "1";
    (*out)[it->second].events.push_back(e);
  }
  return true;
}

}  // namespace robodet
