// Common Log Format ingestion: replay an Apache/Squid-style access log
// through robodet's session model so the offline classifiers (probe-deaf
// browser test, Table-2 ML features) can run over *real* traffic captures,
// not just simulated ones. The active probes (beacon, CSS, hidden link)
// need a live rewriting proxy and therefore cannot fire on a passive log;
// what remains is exactly the paper's §4.2 ML path plus the passive
// heuristics — which is the right degradation.
//
// Supported line shape (combined log format; the two trailing quoted
// fields are optional):
//   1.2.3.4 - - [06/Jan/2006:10:15:30 -0500] "GET /p/1.html HTTP/1.0" 200 2326
//       "http://ref.example.com/" "Mozilla/4.0 (compatible; MSIE 6.0)"
#ifndef ROBODET_SRC_SIM_CLF_IMPORT_H_
#define ROBODET_SRC_SIM_CLF_IMPORT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/request.h"
#include "src/sim/experiment.h"

namespace robodet {

struct ClfEntry {
  IpAddress ip;
  TimeMs time = 0;
  Method method = Method::kGet;
  // Request target as logged (path, possibly absolute URL for proxies).
  std::string target;
  int status = 0;
  uint64_t bytes = 0;
  std::string referrer;   // "-" normalized to empty.
  std::string user_agent; // "-" normalized to empty.
};

// Parses one log line. Returns nullopt on malformed lines (callers count
// and skip them — real logs always contain garbage).
std::optional<ClfEntry> ParseClfLine(std::string_view line);

// Parses a timestamp like "06/Jan/2006:10:15:30 -0500" to milliseconds
// since an arbitrary epoch (ordering and deltas are what matter; the zone
// offset is applied).
std::optional<TimeMs> ParseClfTimestamp(std::string_view stamp);

struct ClfReplayResult {
  std::vector<SessionRecord> records;  // truly_human is unknown: left false.
  size_t lines_total = 0;
  size_t lines_malformed = 0;
};

struct ClfReplayOptions {
  TimeMs session_idle_timeout = kHour;
  // Origin host assumed for relative targets.
  std::string default_host = "log.import";
};

// Replays parsed entries (must be in log order) through the <IP, UA>
// session model, producing SessionRecords with per-request events and the
// passive signals (robots.txt). Ground-truth labels are not available
// from a log; records carry client_type "clf".
ClfReplayResult ReplayClfLog(const std::vector<std::string>& lines,
                             const ClfReplayOptions& options = {});

// Convenience: loads a file and replays it. Returns nullopt if the file
// cannot be read.
std::optional<ClfReplayResult> ReplayClfFile(const std::string& path,
                                             const ClfReplayOptions& options = {});

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_CLF_IMPORT_H_
