#include "src/sim/gateway.h"

namespace robodet {

void Gateway::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.ok =
      registry->FindOrCreateCounter("robodet_gateway_fetches_total", {{"outcome", "ok"}});
  metrics_.blocked =
      registry->FindOrCreateCounter("robodet_gateway_fetches_total", {{"outcome", "blocked"}});
  metrics_.redirect =
      registry->FindOrCreateCounter("robodet_gateway_fetches_total", {{"outcome", "redirect"}});
  metrics_.error =
      registry->FindOrCreateCounter("robodet_gateway_fetches_total", {{"outcome", "error"}});
  metrics_.degraded = registry->FindOrCreateCounter("robodet_gateway_degraded_total");
}

void Gateway::RecordOutcome(const ProxyServer::Result& result, FetchStats* stats) {
  if (stats != nullptr) {
    ++stats->requests;
  }
  if (result.degraded != DegradationLevel::kFull) {
    if (stats != nullptr) {
      ++stats->degraded;
      if (result.degraded == DegradationLevel::kShed) {
        ++stats->shed;
      }
    }
    IncIfBound(metrics_.degraded);
  }
  if (result.blocked) {
    if (stats != nullptr) ++stats->blocked;
    IncIfBound(metrics_.blocked);
  } else if (Is3xx(result.response.status)) {
    if (stats != nullptr) ++stats->redirects;
    IncIfBound(metrics_.redirect);
  } else if (Is4xx(result.response.status) || Is5xx(result.response.status)) {
    if (stats != nullptr) ++stats->errors;
    IncIfBound(metrics_.error);
  } else {
    if (stats != nullptr) ++stats->ok;
    IncIfBound(metrics_.ok);
  }
}

Gateway::FetchResult Gateway::Fetch(const ClientIdentity& id, Method method, const Url& url,
                                    std::string_view referrer, FetchStats* stats,
                                    const Headers* extra_headers) {
  Request request;
  request.time = clock_->Now();
  request.client_ip = id.ip;
  request.method = method;
  request.url = url;
  request.headers.Set("Host", url.host());
  request.headers.Set("User-Agent", id.user_agent);
  if (!referrer.empty()) {
    request.headers.Set("Referer", referrer);
  }
  if (extra_headers != nullptr) {
    for (const auto& [name, value] : extra_headers->entries()) {
      request.headers.Set(name, value);
    }
  }

  ProxyServer* target = router_ ? router_(id) : proxy_;
  ProxyServer::Result result = target->Handle(request);
  RecordOutcome(result, stats);
  FetchResult out;
  out.response = std::move(result.response);
  out.blocked = result.blocked;
  return out;
}

Gateway::FetchResult Gateway::Post(const ClientIdentity& id, const Url& url,
                                   std::string body, std::string_view referrer,
                                   FetchStats* stats) {
  Request request;
  request.time = clock_->Now();
  request.client_ip = id.ip;
  request.method = Method::kPost;
  request.url = url;
  request.headers.Set("Host", url.host());
  request.headers.Set("User-Agent", id.user_agent);
  request.headers.Set("Content-Type", "application/x-www-form-urlencoded");
  request.headers.Set("Content-Length", std::to_string(body.size()));
  if (!referrer.empty()) {
    request.headers.Set("Referer", referrer);
  }
  request.body = std::move(body);

  ProxyServer* target = router_ ? router_(id) : proxy_;
  ProxyServer::Result result = target->Handle(request);
  RecordOutcome(result, stats);
  FetchResult out;
  out.response = std::move(result.response);
  out.blocked = result.blocked;
  return out;
}

}  // namespace robodet
