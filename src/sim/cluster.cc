#include "src/sim/cluster.h"

#include "src/util/hash.h"

namespace robodet {

ProxyCluster::ProxyCluster(Config config, const ProxyConfig& proxy_config, SimClock* clock,
                           ProxyServer::OriginHandler origin, uint64_t seed)
    : config_(config), clock_(clock), rng_(seed) {
  const size_t n = config_.nodes == 0 ? 1 : config_.nodes;
  if (config_.share_key_table) {
    shared_keys_ = std::make_unique<KeyTable>(proxy_config.keys);
  }
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Every node gets its own PRNG stream and therefore its own token
    // secrets would differ — but probe validation must work on whichever
    // node receives the fetch, and CoDeeN nodes shared the deployment
    // configuration. Keep the shared secret from proxy_config; the
    // *tables* (keys, sessions) are what stay per-node.
    ProxyConfig node_config = proxy_config;
    if (!node_config.persistence.state_dir.empty()) {
      // Each node persists into its own subdirectory; sharing one journal
      // would interleave unrelated nodes' state.
      node_config.persistence.state_dir += "/node-" + std::to_string(i);
    }
    nodes_.push_back(std::make_unique<ProxyServer>(node_config, clock, origin,
                                                   seed ^ (0x9e3779b9ULL * (i + 1))));
    if (shared_keys_ != nullptr) {
      nodes_.back()->UseSharedKeyTable(shared_keys_.get());
    }
  }
  down_until_.assign(nodes_.size(), 0);
  schedule_ = GenerateCrashSchedule(config_.crashes, nodes_.size(), config_.crash_horizon);
}

void ProxyCluster::UpdateLiveness(TimeMs now) {
  while (next_crash_ < schedule_.size() && schedule_[next_crash_].at <= now) {
    const CrashEvent& ev = schedule_[next_crash_];
    // The node's memory is gone the instant it crashes; recovery (when
    // persistence is wired) happens as part of the restart.
    nodes_[ev.node]->SimulateCrashRestart(ev.at + config_.crashes.restart_delay);
    down_until_[ev.node] = ev.at + config_.crashes.restart_delay;
    ++crashes_applied_;
    ++next_crash_;
  }
}

bool ProxyCluster::IsLive(size_t node, TimeMs now) const {
  return node < down_until_.size() && now >= down_until_[node];
}

size_t ProxyCluster::RendezvousPick(uint32_t ip, TimeMs now) const {
  // Highest-random-weight hashing: every client ranks the nodes by a
  // per-(client, node) score, takes the best live one. A node's crash
  // moves only *its* clients — each to its fixed second choice — and its
  // restart moves exactly those clients back.
  size_t best = 0;
  uint64_t best_score = 0;
  bool found = false;
  for (int live_only = 1; live_only >= 0; --live_only) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (live_only != 0 && !IsLive(i, now)) {
        continue;
      }
      const uint64_t score = Mix64(HashCombine(ip, 0xc1e5 * (i + 1)));
      if (!found || score > best_score) {
        found = true;
        best = i;
        best_score = score;
      }
    }
    if (found) {
      break;  // Second pass (all nodes) only when the whole cluster is down.
    }
  }
  return best;
}

ProxyServer* ProxyCluster::Route(const ClientIdentity& id) {
  const TimeMs now = clock_ != nullptr ? clock_->Now() : 0;
  UpdateLiveness(now);
  if (nodes_.size() == 1) {
    return nodes_[0].get();
  }
  if (config_.switch_prob > 0.0 && rng_.Bernoulli(config_.switch_prob)) {
    // A bouncing client still only lands on live nodes: draw an index, then
    // walk forward to the first live one (degenerate all-down case keeps
    // the raw draw).
    const size_t start = rng_.UniformU64(nodes_.size());
    for (size_t off = 0; off < nodes_.size(); ++off) {
      const size_t idx = (start + off) % nodes_.size();
      if (IsLive(idx, now)) {
        return nodes_[idx].get();
      }
    }
    return nodes_[start].get();
  }
  return nodes_[RendezvousPick(id.ip.value(), now)].get();
}

ProxyStats ProxyCluster::AggregateStats() const {
  ProxyStats total;
  for (const auto& node : nodes_) {
    const ProxyStats& s = node->stats();
    total.requests += s.requests;
    total.blocked_requests += s.blocked_requests;
    total.pages_instrumented += s.pages_instrumented;
    total.probe_hits_css += s.probe_hits_css;
    total.probe_hits_js_file += s.probe_hits_js_file;
    total.beacon_hits_ok += s.beacon_hits_ok;
    total.beacon_hits_wrong += s.beacon_hits_wrong;
    total.ua_echo_hits += s.ua_echo_hits;
    total.hidden_link_hits += s.hidden_link_hits;
    total.captcha_passes += s.captcha_passes;
    total.captcha_failures += s.captcha_failures;
    total.origin_bytes += s.origin_bytes;
    total.instrumentation_bytes += s.instrumentation_bytes;
  }
  return total;
}

SessionSignals ProxyCluster::CombinedSignalsFor(IpAddress ip, const std::string& user_agent,
                                                TimeMs now) {
  SessionSignals combined;
  auto merge_index = [](int& into, int value) {
    if (value > 0 && (into == 0 || value < into)) {
      into = value;
    }
  };
  for (const auto& node : nodes_) {
    const SessionSignals& s =
        node->sessions().Touch(SessionKey{ip, user_agent}, now)->signals();
    merge_index(combined.css_probe_at, s.css_probe_at);
    merge_index(combined.js_download_at, s.js_download_at);
    merge_index(combined.js_executed_at, s.js_executed_at);
    merge_index(combined.mouse_event_at, s.mouse_event_at);
    merge_index(combined.wrong_key_at, s.wrong_key_at);
    merge_index(combined.hidden_link_at, s.hidden_link_at);
    merge_index(combined.ua_mismatch_at, s.ua_mismatch_at);
    merge_index(combined.captcha_passed_at, s.captcha_passed_at);
    merge_index(combined.captcha_failed_at, s.captcha_failed_at);
    merge_index(combined.robots_txt_at, s.robots_txt_at);
    merge_index(combined.audio_probe_at, s.audio_probe_at);
    merge_index(combined.attested_mouse_at, s.attested_mouse_at);
    merge_index(combined.unattested_event_at, s.unattested_event_at);
    if (combined.ua_echo_agent.empty()) {
      combined.ua_echo_agent = s.ua_echo_agent;
    }
  }
  return combined;
}

}  // namespace robodet
