#include "src/sim/population.h"

namespace robodet {

std::string_view ClientTypeName(ClientType type) {
  switch (type) {
    case ClientType::kHuman:
      return "human";
    case ClientType::kCrawler:
      return "crawler";
    case ClientType::kPoliteCrawler:
      return "polite_crawler";
    case ClientType::kEmailHarvester:
      return "email_harvester";
    case ClientType::kReferrerSpammer:
      return "referrer_spammer";
    case ClientType::kClickFraud:
      return "click_fraud";
    case ClientType::kBulletinSpam:
      return "bulletin_spam";
    case ClientType::kLinkChecker:
      return "link_checker";
    case ClientType::kVulnScanner:
      return "vuln_scanner";
    case ClientType::kOfflineBrowser:
      return "offline_browser";
    case ClientType::kSmartBotScrapeOne:
      return "smart_scrape_one";
    case ClientType::kSmartBotScrapeAll:
      return "smart_scrape_all";
    case ClientType::kSmartBotJsNoEvents:
      return "smart_js_no_events";
    case ClientType::kSmartBotFullMimic:
      return "smart_full_mimic";
    case ClientType::kNumTypes:
      break;
  }
  return "?";
}

bool IsHumanType(ClientType type) { return type == ClientType::kHuman; }

std::vector<double> PopulationMix::Weights() const {
  return {human,        crawler,      polite_crawler,    email_harvester,
          referrer_spammer, click_fraud, bulletin_spam,  link_checker,
          vuln_scanner,     offline_browser,  smart_scrape_one, smart_scrape_all,
          smart_js_no_events, smart_full_mimic};
}

PopulationFactory::PopulationFactory(const SiteModel* site, PopulationMix mix, uint64_t seed)
    : site_(site), mix_(std::move(mix)), rng_(seed) {}

IpAddress PopulationFactory::IpForIndex(uint32_t index) {
  // 10.0.0.0/8 simulation space, skipping .0 and .255 host octets.
  const uint32_t base = (10u << 24);
  const uint32_t host = index + 1;
  return IpAddress(base | (host & 0x00ffffff));
}

ClientType PopulationFactory::SampleType() {
  const size_t idx = rng_.WeightedIndex(mix_.Weights());
  return idx < static_cast<size_t>(ClientType::kNumTypes) ? static_cast<ClientType>(idx)
                                                          : ClientType::kHuman;
}

std::string PopulationFactory::RobotUserAgent() {
  // "We find that it is commonly forged in practice": most robots lie.
  if (rng_.Bernoulli(0.75)) {
    const auto& profiles = StandardBrowserProfiles();
    return profiles[rng_.UniformU64(profiles.size())].user_agent;
  }
  static const char* const kHonest[] = {
      "libwww-perl/5.805",
      "Wget/1.10.2",
      "Python-urllib/2.4",
      "curl/7.15.1",
      "Java/1.5.0_06",
  };
  return kHonest[rng_.UniformU64(5)];
}

std::unique_ptr<Client> PopulationFactory::MakeHuman(ClientIdentity id) {
  BrowserProfile profile;
  if (rng_.Bernoulli(mix_.human_text_browser_fraction)) {
    profile = TextBrowserProfile();
  } else {
    const auto& profiles = StandardBrowserProfiles();
    profile = profiles[rng_.UniformU64(profiles.size())];
    profile.js_enabled = !rng_.Bernoulli(mix_.human_js_disabled_fraction);
  }
  id.user_agent = profile.user_agent;  // Humans do not forge.
  HumanConfig config;
  config.min_pages = mix_.human_min_pages;
  config.max_pages = mix_.human_max_pages;
  config.mouse_move_prob = mix_.human_mouse_prob;
  config.captcha_attempt_prob = mix_.human_captcha_attempt_prob;
  return std::make_unique<HumanBrowserClient>(std::move(id), rng_.Fork(), site_,
                                              std::move(profile), config);
}

std::unique_ptr<Client> PopulationFactory::MakeSmartBot(ClientIdentity id, SmartBotMode mode,
                                                        bool execute_inline, bool synthesize) {
  SmartBotConfig config;
  config.robot = mix_.robot;
  config.mode = mode;
  config.run_inline_scripts = execute_inline;
  config.synthesize_events = synthesize;
  // JS-capable bots mimic browsers on cheap axes (images) to evade naive
  // content-mix heuristics; the behavioural probes still catch them.
  config.fetch_images = execute_inline;
  config.engine_agent = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
  if (rng_.Bernoulli(mix_.smart_ua_misaligned_fraction)) {
    // A sloppy bot author: the engine self-reports its real name while the
    // header claims MSIE — the UA-echo comparison will catch it.
    config.engine_agent = "CustomBotEngine/0.9";
    id.user_agent = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
  } else {
    // Careful bots keep the forged header consistent with what their
    // engine will echo.
    id.user_agent = config.engine_agent;
  }
  return std::make_unique<SmartBotClient>(std::move(id), rng_.Fork(), site_, std::move(config));
}

std::unique_ptr<Client> PopulationFactory::CreateClient(uint32_t index) {
  const ClientType type = SampleType();
  ClientIdentity id;
  id.ip = IpForIndex(index);
  id.type_name = std::string(ClientTypeName(type));
  id.is_human = IsHumanType(type);
  id.user_agent = RobotUserAgent();

  switch (type) {
    case ClientType::kHuman:
      return MakeHuman(std::move(id));
    case ClientType::kCrawler:
      return std::make_unique<CrawlerClient>(std::move(id), rng_.Fork(), site_, mix_.robot,
                                             /*polite=*/false);
    case ClientType::kPoliteCrawler:
      id.user_agent = "FriendlyCrawler/1.0 (+http://crawler.example.net/about)";
      return std::make_unique<CrawlerClient>(std::move(id), rng_.Fork(), site_, mix_.robot,
                                             /*polite=*/true);
    case ClientType::kEmailHarvester:
      return std::make_unique<EmailHarvesterClient>(std::move(id), rng_.Fork(), site_,
                                                    mix_.robot);
    case ClientType::kReferrerSpammer:
      return std::make_unique<ReferrerSpammerClient>(std::move(id), rng_.Fork(), site_,
                                                     mix_.robot);
    case ClientType::kClickFraud:
      return std::make_unique<ClickFraudClient>(std::move(id), rng_.Fork(), site_, mix_.robot);
    case ClientType::kBulletinSpam:
      return std::make_unique<BulletinSpamClient>(std::move(id), rng_.Fork(), site_,
                                                  mix_.robot);
    case ClientType::kLinkChecker:
      id.user_agent = "LinkChecker/2.1 (+http://validator.example.net)";
      return std::make_unique<LinkCheckerClient>(std::move(id), rng_.Fork(), site_,
                                                 mix_.robot);
    case ClientType::kVulnScanner:
      return std::make_unique<VulnScannerClient>(std::move(id), rng_.Fork(), site_,
                                                 mix_.robot);
    case ClientType::kOfflineBrowser:
      return std::make_unique<OfflineBrowserClient>(std::move(id), rng_.Fork(), site_,
                                                    mix_.robot);
    case ClientType::kSmartBotScrapeOne:
      return MakeSmartBot(std::move(id), SmartBotMode::kScrapeOne, false, false);
    case ClientType::kSmartBotScrapeAll:
      return MakeSmartBot(std::move(id), SmartBotMode::kScrapeAll, false, false);
    case ClientType::kSmartBotJsNoEvents:
      return MakeSmartBot(std::move(id), SmartBotMode::kInterpret, true, false);
    case ClientType::kSmartBotFullMimic:
      return MakeSmartBot(std::move(id), SmartBotMode::kInterpret, true, true);
    case ClientType::kNumTypes:
      break;
  }
  return MakeHuman(std::move(id));
}

}  // namespace robodet
