// Human browsing model. A HumanBrowserClient renders pages the way a
// standard browser does: it fetches embedded CSS/JS/images, executes
// inline and external scripts (when JS is enabled) through the robodet
// JavaScript interpreter — so the *actual generated beacon scripts* run —
// emits mouse events after human think time, follows only visible links,
// and fetches the favicon. The fraction of humans with JavaScript disabled
// (4–6% in the paper) fetch CSS and images but neither download nor run
// scripts.
#ifndef ROBODET_SRC_SIM_HUMAN_BROWSER_H_
#define ROBODET_SRC_SIM_HUMAN_BROWSER_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/attestation.h"
#include "src/html/document.h"
#include "src/js/interpreter.h"
#include "src/sim/client.h"
#include "src/site/site_model.h"

namespace robodet {

struct BrowserProfile {
  std::string name = "Firefox";
  std::string user_agent = "Mozilla/5.0 (X11; Linux) Gecko/20060101 Firefox/1.5";
  bool js_enabled = true;
  bool fetch_css = true;
  bool fetch_images = true;
  bool fetch_favicon = true;
};

// The stock browsers of §2.2. Index with Rng to diversify a population.
const std::vector<BrowserProfile>& StandardBrowserProfiles();

// A Lynx-style text browser: human, but fetches no CSS/images/scripts.
BrowserProfile TextBrowserProfile();

struct HumanConfig {
  int min_pages = 3;
  int max_pages = 30;
  // Probability that the user produces mouse movement on a given page
  // (conditioned on JS being enabled; without JS there is no handler).
  double mouse_move_prob = 0.95;
  // Mean think time between page views.
  TimeMs think_time_mean = 8 * kSecond;
  // Delay between consecutive subresource fetches (browser pipelining).
  TimeMs subfetch_delay = 120;
  // Probability of opting into the CAPTCHA (for the bandwidth incentive)
  // once per session, when the proxy offers one.
  double captcha_attempt_prob = 0.0;
  // Probability of jumping to a random popular page instead of clicking a
  // link (bookmark/URL-bar navigation).
  double jump_prob = 0.15;
  // Probability the favicon is NOT already cached (browsers cache favicons
  // essentially forever, so most sessions never request one).
  double favicon_cold_cache_prob = 0.35;
};

class HumanBrowserClient : public Client {
 public:
  HumanBrowserClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                     BrowserProfile profile, HumanConfig config);

  std::optional<TimeMs> Step(TimeMs now, Gateway& gateway) override;

  // §4.1 extension: gives this user a trusted input device whose events
  // the hardware attests. The device is owned by the caller.
  void set_input_device(const TrustedInputDevice* device) { input_device_ = device; }

 private:
  enum class Phase {
    kStart,
    kLoadPage,
    kSubresources,
    kMouseMove,
    kCaptchaFetch,
    kCaptchaSubmit,
    kNextPage,
    kDone,
  };

  // Per-page script sandbox: a fresh interpreter per document, as browsers
  // create a fresh global object per page.
  struct PageScriptsHolder {
    explicit PageScriptsHolder(const std::string& user_agent)
        : interp(JsInterpreter::Config{user_agent, 200000}) {}
    JsInterpreter interp;
  };

  void PlanPageLoad(const Url& url, const std::string& referrer);
  void OnPageLoaded(Gateway& gateway, const Response& response);
  void RunScripts(Gateway& gateway, const std::string& body);

  const SiteModel* site_;
  BrowserProfile profile_;
  HumanConfig config_;

  Phase phase_ = Phase::kStart;
  int pages_target_ = 0;
  int pages_loaded_ = 0;
  Url current_page_;
  std::string current_referrer_;
  std::unique_ptr<HtmlDocument> current_doc_;
  std::unique_ptr<PageScriptsHolder> scripts_;
  std::deque<Url> pending_subresources_;
  std::string mouse_handler_;
  bool inline_scripts_run_ = false;
  bool favicon_fetched_ = false;
  bool wants_favicon_ = true;
  // Browser cache: URLs of cacheable responses already fetched this
  // session. The server marks all instrumentation no-cache, so probes are
  // never skipped; static site assets are fetched once, as real browsers
  // do.
  std::set<std::string> cache_;
  const TrustedInputDevice* input_device_ = nullptr;  // Not owned.
  bool captcha_attempted_ = false;
  bool wants_captcha_ = false;
  std::string captcha_answer_;
  std::string captcha_token_;
  int redirects_followed_ = 0;
};

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_HUMAN_BROWSER_H_
