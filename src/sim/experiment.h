// End-to-end experiment driver: builds a site, an origin server, an
// instrumenting proxy and a mixed client population, then runs a
// discrete-event loop where each client step issues requests through the
// proxy. Closed sessions are labeled with ground truth (the simulation
// knows which client is human) and collected as SessionRecords — the input
// to every table/figure bench.
#ifndef ROBODET_SRC_SIM_EXPERIMENT_H_
#define ROBODET_SRC_SIM_EXPERIMENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/proxy/proxy_server.h"
#include "src/sim/fault_injector.h"
#include "src/sim/population.h"
#include "src/site/origin_server.h"
#include "src/site/site_model.h"
#include "src/util/clock.h"

namespace robodet {

struct SessionRecord {
  uint64_t session_id = 0;
  std::string client_type;
  bool truly_human = false;
  SessionObservation observation;
  std::vector<RequestEvent> events;
  TimeMs first_request = 0;
  TimeMs last_request = 0;

  int request_count() const { return observation.request_count; }
  const SessionSignals& signals() const { return observation.signals; }
};

struct ExperimentConfig {
  uint64_t seed = 1;
  size_t num_clients = 2000;
  // Client arrival times are uniform over this window, so sessions overlap
  // the way they would on a live proxy.
  TimeMs arrival_window = 12 * kHour;
  SiteConfig site;
  ProxyConfig proxy;
  PopulationMix mix;
  // Chaos schedule applied between the proxy and the origin. Disabled by
  // default (an all-zero plan injects nothing).
  FaultPlan faults;
  // Seeded proxy crash/restart schedule: at each event the proxy loses its
  // in-memory tables (recovering from disk when proxy.persistence is
  // configured). Serial mode only — the parallel driver has no global
  // timeline to order a crash against, so the plan is ignored there.
  CrashPlan crashes;

  // Worker threads driving clients. 1 keeps the classic serial
  // discrete-event loop. >1 fans clients across a pool: each client runs
  // its whole timeline on one worker with a private clock, the proxy runs
  // in concurrent mode, and records() is bit-identical to the serial run —
  // every client's request times, session splits, minted tokens and
  // beacon keys are pure functions of its own timeline, and the final
  // record stream is canonically sorted in both modes. The identity holds
  // as long as shared capacity limits never bite (key table global bound,
  // session capacity), faults are off and admission control is disabled;
  // those paths depend on cross-client interleaving by design.
  size_t num_threads = 1;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs every client to completion, then closes all sessions.
  void Run();

  const std::vector<SessionRecord>& records() const { return records_; }

  // The paper analyzes sessions "that have sent more than 10 requests".
  std::vector<const SessionRecord*> RecordsWithMinRequests(int min_requests) const;

  ProxyServer& proxy() { return *proxy_; }
  const SiteModel& site() const { return site_; }
  SimClock& clock() { return clock_; }
  const FaultInjector& faults() const { return *faults_; }

  struct TypeStats {
    uint64_t clients = 0;
    uint64_t requests = 0;
    uint64_t blocked = 0;
  };
  const std::map<std::string, TypeStats>& type_stats() const { return type_stats_; }

  // Crash events applied during Run (serial mode only).
  uint64_t crashes_applied() const { return crashes_applied_; }

 private:
  // Runs every client to completion on a pool of `threads` workers; clients
  // are claimed via an atomic cursor and each runs on a private clock.
  void RunClientsParallel(std::vector<std::unique_ptr<Client>>& clients,
                          const std::vector<TimeMs>& arrivals, size_t threads);

  ExperimentConfig config_;
  SimClock clock_;
  SiteModel site_;
  std::unique_ptr<OriginServer> origin_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<ProxyServer> proxy_;
  std::vector<SessionRecord> records_;
  // Session-close callbacks fire on worker threads in parallel runs.
  std::mutex records_mu_;
  // The origin + fault injector are single-threaded machines; parallel
  // runs serialize calls into them (their simulated latency costs no wall
  // time, so this does not limit scaling — see bench/scale.cc for the
  // regime where origin waits are real).
  std::mutex origin_mu_;
  std::map<std::string, TypeStats> type_stats_;
  // Ground truth: client identity by IP.
  std::map<uint32_t, std::pair<std::string, bool>> identity_by_ip_;
  uint64_t crashes_applied_ = 0;
  bool ran_ = false;
};

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_EXPERIMENT_H_
