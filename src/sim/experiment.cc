#include "src/sim/experiment.h"

#include <algorithm>
#include <queue>

#include "src/sim/gateway.h"
#include "src/util/logging.h"

namespace robodet {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  Rng site_rng(config_.seed ^ 0x5174e5eedULL);
  site_ = SiteModel::Generate(config_.site, site_rng);
  origin_ = std::make_unique<OriginServer>(&site_);
  config_.proxy.host = site_.host();
  faults_ = std::make_unique<FaultInjector>(
      config_.faults, [this](const Request& r) { return origin_->HandleOrigin(r); });
  proxy_ = std::make_unique<ProxyServer>(
      config_.proxy, &clock_,
      FallibleOriginHandler([this](const Request& r) { return (*faults_)(r); }),
      config_.seed ^ 0x9042ULL);
}

void Experiment::Run() {
  if (ran_) {
    return;
  }
  ran_ = true;

  proxy_->sessions().set_on_closed([this](std::unique_ptr<SessionState> session) {
    SessionRecord record;
    record.session_id = session->id();
    record.observation = session->observation();
    record.events = session->events();
    record.first_request = session->first_request_time();
    record.last_request = session->last_request_time();
    const auto it = identity_by_ip_.find(session->key().ip.value());
    if (it != identity_by_ip_.end()) {
      record.client_type = it->second.first;
      record.truly_human = it->second.second;
    }
    records_.push_back(std::move(record));
  });

  PopulationFactory factory(&site_, config_.mix, config_.seed ^ 0x70f0ULL);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(config_.num_clients);
  Rng arrival_rng(config_.seed ^ 0xa881ULL);

  // Min-heap of (next step time, client index).
  using QueueItem = std::pair<TimeMs, size_t>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;

  for (size_t i = 0; i < config_.num_clients; ++i) {
    clients.push_back(factory.CreateClient(static_cast<uint32_t>(i)));
    const ClientIdentity& id = clients.back()->identity();
    identity_by_ip_[id.ip.value()] = {id.type_name, id.is_human};
    queue.emplace(
        static_cast<TimeMs>(arrival_rng.UniformU64(
            static_cast<uint64_t>(std::max<TimeMs>(config_.arrival_window, 1)))),
        i);
  }

  Gateway gateway(proxy_.get(), &clock_);
  uint64_t steps = 0;
  while (!queue.empty()) {
    const auto [when, idx] = queue.top();
    queue.pop();
    clock_.AdvanceTo(when);
    const auto next_delay = clients[idx]->Step(clock_.Now(), gateway);
    if (next_delay.has_value()) {
      queue.emplace(clock_.Now() + std::max<TimeMs>(*next_delay, 1), idx);
    }
    if (++steps % (1u << 18) == 0) {
      ROBODET_LOG(kInfo) << "experiment steps=" << steps
                         << " t=" << FormatDuration(clock_.Now())
                         << " active_sessions=" << proxy_->sessions().active_count();
    }
  }

  // Let the idle timeout elapse so every session closes "naturally".
  clock_.Advance(2 * kHour);
  proxy_->sessions().CloseAll();

  for (const auto& client : clients) {
    TypeStats& ts = type_stats_[client->identity().type_name];
    ++ts.clients;
    ts.requests += client->stats().requests;
    ts.blocked += client->stats().blocked;
  }
}

std::vector<const SessionRecord*> Experiment::RecordsWithMinRequests(int min_requests) const {
  std::vector<const SessionRecord*> out;
  for (const SessionRecord& r : records_) {
    if (r.request_count() > min_requests) {
      out.push_back(&r);
    }
  }
  return out;
}

}  // namespace robodet
