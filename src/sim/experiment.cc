#include "src/sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <thread>
#include <tuple>

#include "src/sim/gateway.h"
#include "src/util/logging.h"

namespace robodet {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  Rng site_rng(config_.seed ^ 0x5174e5eedULL);
  site_ = SiteModel::Generate(config_.site, site_rng);
  origin_ = std::make_unique<OriginServer>(&site_);
  config_.proxy.host = site_.host();
  const bool parallel = config_.num_threads > 1;
  config_.proxy.concurrent = parallel;
  faults_ = std::make_unique<FaultInjector>(
      config_.faults, [this](const Request& r) { return origin_->HandleOrigin(r); });
  proxy_ = std::make_unique<ProxyServer>(
      config_.proxy, &clock_,
      FallibleOriginHandler([this, parallel](const Request& r) {
        if (parallel) {
          std::lock_guard<std::mutex> lock(origin_mu_);
          return (*faults_)(r);
        }
        return (*faults_)(r);
      }),
      config_.seed ^ 0x9042ULL);
}

void Experiment::Run() {
  if (ran_) {
    return;
  }
  ran_ = true;

  proxy_->sessions().set_on_closed([this](std::unique_ptr<SessionState> session) {
    SessionRecord record;
    record.session_id = session->id();
    record.observation = session->observation();
    record.events = session->events();
    record.first_request = session->first_request_time();
    record.last_request = session->last_request_time();
    const auto it = identity_by_ip_.find(session->key().ip.value());
    if (it != identity_by_ip_.end()) {
      record.client_type = it->second.first;
      record.truly_human = it->second.second;
    }
    std::lock_guard<std::mutex> lock(records_mu_);
    records_.push_back(std::move(record));
  });

  // Clients and arrival times are always drawn serially, in index order, so
  // the population (and every client's private rng stream) is identical no
  // matter how many workers run them afterwards.
  PopulationFactory factory(&site_, config_.mix, config_.seed ^ 0x70f0ULL);
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<TimeMs> arrivals;
  clients.reserve(config_.num_clients);
  arrivals.reserve(config_.num_clients);
  Rng arrival_rng(config_.seed ^ 0xa881ULL);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    clients.push_back(factory.CreateClient(static_cast<uint32_t>(i)));
    const ClientIdentity& id = clients.back()->identity();
    identity_by_ip_[id.ip.value()] = {id.type_name, id.is_human};
    arrivals.push_back(static_cast<TimeMs>(arrival_rng.UniformU64(
        static_cast<uint64_t>(std::max<TimeMs>(config_.arrival_window, 1)))));
  }

  const size_t threads = std::max<size_t>(config_.num_threads, 1);
  if (threads > 1) {
    RunClientsParallel(clients, arrivals, threads);
  } else {
    // Classic serial discrete-event loop: min-heap of (next step time,
    // client index). Note each client's step times depend only on its own
    // arrival and think delays — the heap orders clients but never moves
    // one client's clock for another — which is the invariant the parallel
    // path exploits.
    using QueueItem = std::pair<TimeMs, size_t>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
    for (size_t i = 0; i < clients.size(); ++i) {
      queue.emplace(arrivals[i], i);
    }
    // Single-proxy crash schedule ("one node"): events land between client
    // steps in timestamp order, so a crash at t wipes exactly the state
    // built before t.
    const std::vector<CrashEvent> crash_schedule =
        GenerateCrashSchedule(config_.crashes, 1, config_.arrival_window + kDay);
    size_t next_crash = 0;
    Gateway gateway(proxy_.get(), &clock_);
    uint64_t steps = 0;
    while (!queue.empty()) {
      const auto [when, idx] = queue.top();
      queue.pop();
      clock_.AdvanceTo(when);
      while (next_crash < crash_schedule.size() && crash_schedule[next_crash].at <= clock_.Now()) {
        proxy_->SimulateCrashRestart(crash_schedule[next_crash].at +
                                     config_.crashes.restart_delay);
        ++next_crash;
        ++crashes_applied_;
      }
      const auto next_delay = clients[idx]->Step(clock_.Now(), gateway);
      if (next_delay.has_value()) {
        queue.emplace(clock_.Now() + std::max<TimeMs>(*next_delay, 1), idx);
      }
      if (++steps % (1u << 18) == 0) {
        ROBODET_LOG(kInfo) << "experiment steps=" << steps
                           << " t=" << FormatDuration(clock_.Now())
                           << " active_sessions=" << proxy_->sessions().active_count();
      }
    }
  }

  // Let the idle timeout elapse so every session closes "naturally".
  clock_.Advance(2 * kHour);
  proxy_->sessions().CloseAll();

  // Canonical order: close-callback order is shard order serially and
  // worker-completion order in parallel runs; (first_request, session_id)
  // is a total order on real sessions, making records() comparable across
  // modes and runs.
  std::sort(records_.begin(), records_.end(),
            [](const SessionRecord& a, const SessionRecord& b) {
              return std::tie(a.first_request, a.session_id) <
                     std::tie(b.first_request, b.session_id);
            });

  for (const auto& client : clients) {
    TypeStats& ts = type_stats_[client->identity().type_name];
    ++ts.clients;
    ts.requests += client->stats().requests;
    ts.blocked += client->stats().blocked;
  }
}

void Experiment::RunClientsParallel(std::vector<std::unique_ptr<Client>>& clients,
                                    const std::vector<TimeMs>& arrivals, size_t threads) {
  std::atomic<size_t> next{0};
  std::atomic<TimeMs> end_time{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= clients.size()) {
        break;
      }
      // The whole client runs here, on a private clock seeded from its
      // arrival time: its request timestamps are arrival + its own think
      // delays, exactly what the serial heap would have given it.
      SimClock client_clock;
      Gateway gateway(proxy_.get(), &client_clock);
      TimeMs when = arrivals[i];
      for (;;) {
        client_clock.AdvanceTo(when);
        const auto next_delay = clients[i]->Step(client_clock.Now(), gateway);
        if (!next_delay.has_value()) {
          break;
        }
        when = client_clock.Now() + std::max<TimeMs>(*next_delay, 1);
      }
      TimeMs seen = end_time.load(std::memory_order_relaxed);
      while (client_clock.Now() > seen &&
             !end_time.compare_exchange_weak(seen, client_clock.Now(),
                                             std::memory_order_relaxed)) {
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& th : pool) {
    th.join();
  }
  // Land the shared clock on the latest client timeline so the post-run
  // idle advance and CloseAll see the same "end of experiment" as a serial
  // run would.
  clock_.AdvanceTo(end_time.load(std::memory_order_relaxed));
}

std::vector<const SessionRecord*> Experiment::RecordsWithMinRequests(int min_requests) const {
  std::vector<const SessionRecord*> out;
  for (const SessionRecord& r : records_) {
    if (r.request_count() > min_requests) {
      out.push_back(&r);
    }
  }
  return out;
}

}  // namespace robodet
