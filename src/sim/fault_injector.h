// Deterministic chaos for the origin path: wraps any fallible origin
// handler and injects errors, latency, and body corruption according to a
// seeded schedule. Same seed + same request stream -> same fault schedule,
// which is what makes chaos runs reproducible and the resilience layer's
// counters comparable across configurations.
#ifndef ROBODET_SRC_SIM_FAULT_INJECTOR_H_
#define ROBODET_SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/http/origin_result.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace robodet {

struct FaultPlan {
  // Probability per fetch of a hard fault (timeout / connect-fail / reset /
  // 5xx, drawn uniformly among the four).
  double error_rate = 0.0;
  // Probability per fetch of `slow_latency` added service time.
  double slow_rate = 0.0;
  // Probability per fetch of a corrupted-but-delivered body (truncated
  // Content-Length, oversized padding, or a content-type lie, drawn
  // uniformly; oversize is skipped when oversize_bytes == 0).
  double corrupt_rate = 0.0;
  TimeMs slow_latency = 400;
  size_t oversize_bytes = 0;
  uint64_t seed = 1337;
  // Hard outage window [start, end) in simulated ms: every fetch inside it
  // fails to connect. -1 disables. This is what drives breaker tests.
  TimeMs outage_start = -1;
  TimeMs outage_end = -1;

  bool enabled() const {
    return error_rate > 0.0 || slow_rate > 0.0 || corrupt_rate > 0.0 || outage_start >= 0;
  }
};

// Seeded node-crash schedule: each node crashes with exponential
// inter-arrival gaps (a Poisson process per node, the standard PlanetLab
// restart model) and comes back restart_delay later. Same plan -> same
// schedule, so chaos runs with and without persistence see identical
// crashes.
struct CrashPlan {
  // Expected crashes per node per simulated hour. 0 disables.
  double crash_rate_per_hour = 0.0;
  // How long a crashed node stays unroutable before it restarts.
  TimeMs restart_delay = 30 * kSecond;
  uint64_t seed = 4242;

  bool enabled() const { return crash_rate_per_hour > 0.0; }
};

struct CrashEvent {
  TimeMs at = 0;
  size_t node = 0;
};

// The crash times for `nodes` nodes over [0, horizon), sorted by time.
// Pure function of (plan, nodes, horizon).
std::vector<CrashEvent> GenerateCrashSchedule(const CrashPlan& plan, size_t nodes,
                                              TimeMs horizon);

class FaultInjector {
 public:
  struct Counts {
    uint64_t total = 0;
    uint64_t errors = 0;     // Hard faults injected (incl. outage window).
    uint64_t slowed = 0;
    uint64_t corrupted = 0;
  };

  FaultInjector(FaultPlan plan, FallibleOriginHandler inner)
      : plan_(plan), inner_(std::move(inner)), rng_(plan.seed) {}

  OriginResult operator()(const Request& request);

  const Counts& counts() const { return counts_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  OriginResult InjectHardFault(const Request& request);
  void CorruptBody(Response& response);

  FaultPlan plan_;
  FallibleOriginHandler inner_;
  Rng rng_;
  Counts counts_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_FAULT_INJECTOR_H_
