// Session-log serialization: export labeled SessionRecords to CSV (one
// sessions table, one per-request events table) and load them back. This
// is the "log tooling" an operator needs to move captures between the
// proxy, offline analysis, and the ML harness — the paper's team did this
// by grepping proxy logs; here it is a first-class, round-trippable format.
#ifndef ROBODET_SRC_SIM_RECORD_IO_H_
#define ROBODET_SRC_SIM_RECORD_IO_H_

#include <string>
#include <vector>

#include "src/sim/experiment.h"

namespace robodet {

// Writes one row per session: identity, label, signal indices, counters.
// Returns false on I/O failure.
bool WriteSessionsCsv(const std::string& path, const std::vector<SessionRecord>& records);

// Writes one row per tracked request event, keyed by session_id.
bool WriteEventsCsv(const std::string& path, const std::vector<SessionRecord>& records);

// Loads both tables back into records (events merged by session_id).
// Returns false on I/O failure or malformed rows; partial results are
// discarded.
bool ReadRecordsCsv(const std::string& sessions_path, const std::string& events_path,
                    std::vector<SessionRecord>* out);

}  // namespace robodet

#endif  // ROBODET_SRC_SIM_RECORD_IO_H_
