#include "src/sim/human_browser.h"

#include <algorithm>

#include "src/http/cache_control.h"
#include "src/js/generator.h"
#include "src/js/interpreter.h"
#include "src/proxy/captcha.h"
#include "src/util/strings.h"

namespace robodet {

const std::vector<BrowserProfile>& StandardBrowserProfiles() {
  static const std::vector<BrowserProfile> kProfiles = {
      {"IE6", "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)", true, true, true, true},
      {"Firefox", "Mozilla/5.0 (X11; Linux) Gecko/20060101 Firefox/1.5", true, true, true,
       true},
      {"Mozilla", "Mozilla/5.0 (Windows; U; Windows NT 5.0) Gecko/20051111", true, true, true,
       true},
      {"Safari", "Mozilla/5.0 (Macintosh; PPC Mac OS X) AppleWebKit/418 Safari/417.9.3", true,
       true, true, true},
      {"Netscape", "Mozilla/5.0 (Windows; U; Windows NT 5.1) Netscape/8.1", true, true, true,
       true},
      {"Opera", "Opera/8.54 (Windows NT 5.1; U; en)", true, true, true, true},
  };
  return kProfiles;
}

BrowserProfile TextBrowserProfile() {
  // Lynx-style text browser: real human, but fetches no CSS, no images, no
  // scripts — indistinguishable from an HTML-only robot on the 12 Table-2
  // attributes, and invisible to both behavioural probes. These users are
  // part of why the paper's ML tops out around 95%.
  BrowserProfile profile;
  profile.name = "Lynx";
  profile.user_agent = "Lynx/2.8.5rel.1 libwww-FM/2.14";
  profile.js_enabled = false;
  profile.fetch_css = false;
  profile.fetch_images = false;
  profile.fetch_favicon = false;
  return profile;
}

HumanBrowserClient::HumanBrowserClient(ClientIdentity identity, Rng rng, const SiteModel* site,
                                       BrowserProfile profile, HumanConfig config)
    : Client(std::move(identity), std::move(rng)),
      site_(site),
      profile_(std::move(profile)),
      config_(config) {
  wants_favicon_ = this->rng().Bernoulli(config_.favicon_cold_cache_prob);
  wants_captcha_ = this->rng().Bernoulli(config_.captcha_attempt_prob);
}

std::optional<TimeMs> HumanBrowserClient::Step(TimeMs now, Gateway& gateway) {
  (void)now;
  switch (phase_) {
    case Phase::kStart: {
      pages_target_ = static_cast<int>(
          rng().UniformInt(config_.min_pages, std::max(config_.min_pages, config_.max_pages)));
      const PageId entry = site_->SampleEntryPage(rng());
      PlanPageLoad(Url::Make(site_->host(), SiteModel::PagePath(entry)), "");
      return TimeMs{1};
    }

    case Phase::kLoadPage: {
      Gateway::FetchResult result =
          gateway.Fetch(identity(), Method::kGet, current_page_, current_referrer_, stats_ptr());
      if (result.blocked) {
        phase_ = Phase::kDone;
        return std::nullopt;  // A blocked human gives up (and complains).
      }
      if (Is3xx(result.response.status) && redirects_followed_ < 3) {
        const auto target = result.response.RedirectTarget(current_page_);
        if (target.has_value()) {
          ++redirects_followed_;
          current_referrer_ = current_page_.ToString();
          current_page_ = *target;
          return config_.subfetch_delay;  // Stay in kLoadPage.
        }
      }
      redirects_followed_ = 0;
      if (!result.response.IsHtml() || !Is2xx(result.response.status)) {
        // Dead link: back off and try another page.
        phase_ = Phase::kNextPage;
        return config_.think_time_mean / 4;
      }
      OnPageLoaded(gateway, result.response);
      phase_ = Phase::kSubresources;
      return config_.subfetch_delay;
    }

    case Phase::kSubresources: {
      if (!pending_subresources_.empty()) {
        const Url url = pending_subresources_.front();
        pending_subresources_.pop_front();
        if (cache_.contains(url.ToString())) {
          return TimeMs{1};  // Cache hit: no request reaches the proxy.
        }
        Gateway::FetchResult result = gateway.Fetch(identity(), Method::kGet, url,
                                                    current_page_.ToString(), stats_ptr());
        if (IsCacheable(result.response) && cache_.size() < 4096) {
          cache_.insert(url.ToString());
        }
        // External scripts execute as they arrive.
        if (profile_.js_enabled && ClassifyUrl(url) == ResourceKind::kJavaScript &&
            Is2xx(result.response.status) && scripts_ != nullptr) {
          scripts_->interp.Run(result.response.body);
        }
        return config_.subfetch_delay;
      }
      // Queue drained: run inline scripts once (document order puts the
      // UA-echo inline block after the external includes).
      if (!inline_scripts_run_ && profile_.js_enabled && scripts_ != nullptr &&
          current_doc_ != nullptr) {
        inline_scripts_run_ = true;
        RunScripts(gateway, "");
        if (!pending_subresources_.empty()) {
          return config_.subfetch_delay;
        }
      }
      // Mouse movement while reading.
      if (profile_.js_enabled && !mouse_handler_.empty() &&
          rng().Bernoulli(config_.mouse_move_prob)) {
        phase_ = Phase::kMouseMove;
        // Users touch the mouse quickly after the page renders.
        return static_cast<TimeMs>(rng().Exponential(1500.0)) + 50;
      }
      phase_ = Phase::kNextPage;
      return static_cast<TimeMs>(rng().Exponential(
                 static_cast<double>(config_.think_time_mean))) +
             100;
    }

    case Phase::kMouseMove: {
      if (scripts_ != nullptr) {
        scripts_->interp.ClearObservations();
        scripts_->interp.RunHandler(mouse_handler_);
        for (const std::string& fetched : scripts_->interp.fetched_urls()) {
          if (const auto url = Url::Parse(fetched); url.has_value()) {
            // The hardware input stack attests the event behind this
            // beacon, when this user has such hardware.
            Headers extra;
            const Headers* extra_ptr = nullptr;
            if (input_device_ != nullptr) {
              const std::string key =
                  ExtractBeaconKey(url->path(), gateway.proxy_config().instr_prefix);
              if (!key.empty()) {
                extra.Set(AttestationAuthority::kHeaderName,
                          input_device_->HeaderValue(key));
                extra_ptr = &extra;
              }
            }
            gateway.Fetch(identity(), Method::kGet, *url, current_page_.ToString(),
                          stats_ptr(), extra_ptr);
          }
        }
      }
      phase_ = Phase::kNextPage;
      return static_cast<TimeMs>(rng().Exponential(
                 static_cast<double>(config_.think_time_mean))) +
             100;
    }

    case Phase::kCaptchaFetch: {
      const Url url = Url::Make(site_->host(), gateway.proxy_config().instr_prefix +
                                                   "captcha.html");
      Gateway::FetchResult result =
          gateway.Fetch(identity(), Method::kGet, url, current_page_.ToString(), stats_ptr());
      const auto answer = CaptchaService::ReadAnswerFromBody(result.response.body);
      // Find the submit link to recover the token.
      captcha_token_.clear();
      HtmlDocument doc(result.response.body);
      for (const LinkRef& link : doc.Links()) {
        const size_t at = link.href.find("captcha_");
        const size_t end = link.href.find(".cgi");
        if (at != std::string::npos && end != std::string::npos && end > at) {
          captcha_token_ = link.href.substr(at + 8, end - at - 8);
          break;
        }
      }
      if (answer.has_value() && !captcha_token_.empty()) {
        captcha_answer_ = *answer;  // Humans read the distorted image.
        phase_ = Phase::kCaptchaSubmit;
        return 4 * kSecond;  // Typing time.
      }
      phase_ = Phase::kNextPage;
      return config_.think_time_mean;
    }

    case Phase::kCaptchaSubmit: {
      const Url url = Url::Make(site_->host(),
                                gateway.proxy_config().instr_prefix + "captcha_" +
                                    captcha_token_ + ".cgi",
                                "ans=" + captcha_answer_);
      gateway.Fetch(identity(), Method::kGet, url, current_page_.ToString(), stats_ptr());
      phase_ = Phase::kNextPage;
      return config_.think_time_mean;
    }

    case Phase::kNextPage: {
      // The CAPTCHA opt-in (for the bandwidth incentive) is a one-time,
      // per-user decision; JS-disabled users can take it too.
      if (wants_captcha_ && !captcha_attempted_ && gateway.proxy_config().enable_captcha) {
        captcha_attempted_ = true;
        phase_ = Phase::kCaptchaFetch;
        return 500;
      }
      ++pages_loaded_;
      if (pages_loaded_ >= pages_target_) {
        phase_ = Phase::kDone;
        return std::nullopt;
      }
      std::string referrer = current_page_.ToString();
      Url next;
      std::vector<LinkRef> visible;
      if (current_doc_ != nullptr) {
        visible = current_doc_->VisibleLinks();
      }
      if (!visible.empty() && !rng().Bernoulli(config_.jump_prob)) {
        const LinkRef& link = visible[rng().UniformU64(visible.size())];
        next = current_page_.Resolve(link.href);
        // The paper's alternative hook: an onclick handler on the link
        // itself fires on the click that navigates away.
        if (!link.onclick.empty() && profile_.js_enabled && scripts_ != nullptr) {
          scripts_->interp.ClearObservations();
          scripts_->interp.RunHandler(link.onclick);
          for (const std::string& fetched : scripts_->interp.fetched_urls()) {
            if (const auto url = Url::Parse(fetched); url.has_value()) {
              Headers extra;
              const Headers* extra_ptr = nullptr;
              if (input_device_ != nullptr) {
                const std::string key =
                    ExtractBeaconKey(url->path(), gateway.proxy_config().instr_prefix);
                if (!key.empty()) {
                  extra.Set(AttestationAuthority::kHeaderName,
                            input_device_->HeaderValue(key));
                  extra_ptr = &extra;
                }
              }
              gateway.Fetch(identity(), Method::kGet, *url, current_page_.ToString(),
                            stats_ptr(), extra_ptr);
            }
          }
        }
      } else {
        next = Url::Make(site_->host(), SiteModel::PagePath(site_->SampleEntryPage(rng())));
        referrer.clear();  // URL-bar navigation carries no referrer.
      }
      PlanPageLoad(next, referrer);
      return TimeMs{1};
    }

    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

void HumanBrowserClient::PlanPageLoad(const Url& url, const std::string& referrer) {
  current_page_ = url;
  current_referrer_ = referrer;
  current_doc_.reset();
  scripts_.reset();
  pending_subresources_.clear();
  mouse_handler_.clear();
  inline_scripts_run_ = false;
  phase_ = Phase::kLoadPage;
}

void HumanBrowserClient::OnPageLoaded(Gateway& gateway, const Response& response) {
  (void)gateway;
  current_doc_ = std::make_unique<HtmlDocument>(response.body);
  if (profile_.js_enabled) {
    scripts_ = std::make_unique<PageScriptsHolder>(profile_.user_agent);
  }
  mouse_handler_ = current_doc_->BodyEventHandler("onmousemove");

  // Queue subresources in document-ish order: scripts, then CSS, then
  // images, then favicon (once per session).
  for (const EmbedRef& embed : current_doc_->EmbeddedObjects()) {
    const Url url = current_page_.Resolve(embed.url);
    switch (embed.kind) {
      case EmbedRef::Kind::kScript:
        if (profile_.js_enabled) {
          pending_subresources_.push_back(url);
        }
        break;
      case EmbedRef::Kind::kCss:
        if (profile_.fetch_css) {
          pending_subresources_.push_back(url);
        }
        break;
      case EmbedRef::Kind::kImage:
      case EmbedRef::Kind::kAudio:
        if (profile_.fetch_images) {
          pending_subresources_.push_back(url);
        }
        break;
      case EmbedRef::Kind::kFrame:
        break;  // No frames in the synthetic site.
    }
  }
  // Browsers issue subresource fetches in parallel; the order the *proxy*
  // observes is completion order, which is effectively jittered. This is
  // what stretches the CSS-probe detection CDF into the multi-request tail
  // the paper measures (95% within 19 requests, not within 3).
  std::vector<Url> shuffled(pending_subresources_.begin(), pending_subresources_.end());
  rng().Shuffle(shuffled);
  pending_subresources_.assign(shuffled.begin(), shuffled.end());

  if (profile_.fetch_favicon && wants_favicon_ && !favicon_fetched_) {
    favicon_fetched_ = true;
    pending_subresources_.push_back(Url::Make(site_->host(), "/favicon.ico"));
  }
}

void HumanBrowserClient::RunScripts(Gateway& gateway, const std::string& body) {
  (void)gateway;
  (void)body;
  if (scripts_ == nullptr || current_doc_ == nullptr) {
    return;
  }
  scripts_->interp.ClearObservations();
  for (const std::string& code : current_doc_->InlineScripts()) {
    scripts_->interp.Run(code);
  }
  // document.write output becomes part of the page: fetch any stylesheets
  // (the UA-echo <link>) and images it introduces.
  for (const std::string& written : scripts_->interp.document_writes()) {
    HtmlDocument written_doc(written);
    for (const EmbedRef& embed : written_doc.EmbeddedObjects()) {
      if (embed.kind == EmbedRef::Kind::kCss && profile_.fetch_css) {
        pending_subresources_.push_back(current_page_.Resolve(embed.url));
      } else if (embed.kind == EmbedRef::Kind::kImage && profile_.fetch_images) {
        pending_subresources_.push_back(current_page_.Resolve(embed.url));
      }
    }
  }
  // Scripted Image() fetches outside handlers fire immediately (none in the
  // standard beacon, but robots' scripts may differ).
  for (const std::string& fetched : scripts_->interp.fetched_urls()) {
    if (const auto url = Url::Parse(fetched); url.has_value()) {
      pending_subresources_.push_back(*url);
    }
  }
}

}  // namespace robodet
