// Standard-browser testing (§2.2): fast behavioural checks that do not
// need JavaScript on the client. Fetching the injected per-page CSS probe
// is browser-like; following the invisible link trap, echoing a runtime
// agent different from the User-Agent header, or ignoring every probe over
// many pages are robot signatures. The User-Agent header itself is ignored
// (commonly forged).
#ifndef ROBODET_SRC_CORE_BROWSER_TEST_DETECTOR_H_
#define ROBODET_SRC_CORE_BROWSER_TEST_DETECTOR_H_

#include "src/core/signals.h"
#include "src/core/verdict.h"

namespace robodet {

class BrowserTestDetector {
 public:
  struct Options {
    // Declare "not a standard browser" only after this many instrumented
    // pages went by with no CSS probe fetch.
    int probe_ignore_patience = 5;
    // Treat a /robots.txt fetch as robot self-identification. Standard
    // browsers never request it; robots that do are at least honest.
    bool robots_txt_is_robot = true;
  };

  BrowserTestDetector();
  explicit BrowserTestDetector(Options options) : options_(options) {}

  Classification Classify(const SessionObservation& obs) const;

 private:
  Options options_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_BROWSER_TEST_DETECTOR_H_
