// The paper's combined session classifier:
//
//     S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)
//
// A session is human when it downloaded the CSS probe or produced mouse
// activity, unless it executed JavaScript without ever producing mouse
// activity (definitely a robot). Also provides the *online* variant used
// for request-time decisions, which combines the human-activity and
// browser-test detectors with configurable patience.
#ifndef ROBODET_SRC_CORE_COMBINED_CLASSIFIER_H_
#define ROBODET_SRC_CORE_COMBINED_CLASSIFIER_H_

#include "src/core/browser_test_detector.h"
#include "src/core/human_activity_detector.h"
#include "src/core/signals.h"
#include "src/core/verdict.h"
#include "src/obs/metrics.h"

namespace robodet {

class CombinedClassifier {
 public:
  struct Options {
    HumanActivityDetector::Options human_activity;
    BrowserTestDetector::Options browser_test;
  };

  CombinedClassifier();
  explicit CombinedClassifier(Options options)
      : human_activity_(options.human_activity), browser_test_(options.browser_test) {}

  // The set-algebra verdict over a finished session. Never kUnknown: the
  // paper labels "all other sessions as belonging to robots".
  static Verdict SetAlgebraVerdict(const SessionSignals& signals);

  // Membership helpers matching Table 1's row definitions.
  static bool InCssSet(const SessionSignals& s) { return s.DownloadedCssProbe(); }
  static bool InMouseSet(const SessionSignals& s) { return s.MouseActivity(); }
  static bool InJsSet(const SessionSignals& s) { return s.ExecutedJs(); }

  // Online classification for request-time enforcement: robot evidence
  // (wrong key, hidden link, UA mismatch, JS-without-mouse, probe-deaf)
  // wins over human-leaning evidence, mouse activity wins over everything.
  Classification ClassifyOnline(const SessionObservation& obs) const;

  // Counts every online classification into `registry` as
  // robodet_classify_online_total{verdict=...}.
  void BindMetrics(MetricsRegistry* registry);

 private:
  Classification ClassifyOnlineUncounted(const SessionObservation& obs) const;

  struct Metrics {
    Counter* human = nullptr;
    Counter* robot = nullptr;
    Counter* unknown = nullptr;
  };

  Metrics metrics_;
  HumanActivityDetector human_activity_;
  BrowserTestDetector browser_test_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_COMBINED_CLASSIFIER_H_
