// Detection verdicts and the evidence trail behind them.
#ifndef ROBODET_SRC_CORE_VERDICT_H_
#define ROBODET_SRC_CORE_VERDICT_H_

#include <string>
#include <string_view>
#include <vector>

namespace robodet {

enum class Verdict {
  kUnknown,  // Not enough signal yet.
  kHuman,
  kRobot,
};

constexpr std::string_view VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kHuman:
      return "human";
    case Verdict::kRobot:
      return "robot";
  }
  return "unknown";
}

struct Evidence {
  // Which detector and which signal produced this piece of evidence.
  std::string detector;
  std::string signal;
  // 1-based request index at which the signal fired.
  int request_index = 0;
  // Direction the evidence points.
  Verdict points_to = Verdict::kUnknown;
};

struct Classification {
  Verdict verdict = Verdict::kUnknown;
  // Request index at which the verdict was first reachable; 0 if unknown.
  int decided_at = 0;
  std::vector<Evidence> evidence;
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_VERDICT_H_
