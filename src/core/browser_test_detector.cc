#include "src/core/browser_test_detector.h"

namespace robodet {

BrowserTestDetector::BrowserTestDetector() : options_(Options{}) {}

Classification BrowserTestDetector::Classify(const SessionObservation& obs) const {
  Classification out;
  const SessionSignals& sig = obs.signals;

  if (sig.FollowedHiddenLink()) {
    out.verdict = Verdict::kRobot;
    out.decided_at = sig.hidden_link_at;
    out.evidence.push_back(
        {"browser_test", "hidden_link_followed", sig.hidden_link_at, Verdict::kRobot});
    return out;
  }
  if (sig.UaMismatch()) {
    out.verdict = Verdict::kRobot;
    out.decided_at = sig.ua_mismatch_at;
    out.evidence.push_back(
        {"browser_test", "browser_type_mismatch", sig.ua_mismatch_at, Verdict::kRobot});
    return out;
  }
  if (options_.robots_txt_is_robot && sig.FetchedRobotsTxt()) {
    out.verdict = Verdict::kRobot;
    out.decided_at = sig.robots_txt_at;
    out.evidence.push_back(
        {"browser_test", "fetched_robots_txt", sig.robots_txt_at, Verdict::kRobot});
    return out;
  }
  if (sig.DownloadedCssProbe()) {
    out.verdict = Verdict::kHuman;
    out.decided_at = sig.css_probe_at;
    out.evidence.push_back(
        {"browser_test", "css_probe_fetched", sig.css_probe_at, Verdict::kHuman});
    return out;
  }
  if (sig.DownloadedAudioProbe()) {
    out.verdict = Verdict::kHuman;
    out.decided_at = sig.audio_probe_at;
    out.evidence.push_back(
        {"browser_test", "audio_probe_fetched", sig.audio_probe_at, Verdict::kHuman});
    return out;
  }
  if (obs.instrumented_pages >= options_.probe_ignore_patience) {
    // Served N probe-carrying pages, fetched none: goal-oriented robot that
    // skips presentation objects. The verdict was reachable the moment the
    // N-th probe-carrying page went by unfetched.
    int decided = obs.InstrumentedPageRequestIndex(options_.probe_ignore_patience);
    if (decided == 0) {
      decided = obs.request_count;
    }
    out.verdict = Verdict::kRobot;
    out.decided_at = decided;
    out.evidence.push_back(
        {"browser_test", "ignored_all_css_probes", decided, Verdict::kRobot});
    return out;
  }
  out.verdict = Verdict::kUnknown;
  return out;
}

}  // namespace robodet
