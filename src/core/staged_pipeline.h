// Staged detection (§4.1's "more practical solution may combine multiple
// approaches in a staged manner — making quick decisions by fast analysis,
// then perform a careful decision algorithm for boundary cases"). Stage 1
// is the cheap browser test; stage 2 the human-activity detector; stage 3
// an optional pluggable judge (e.g. the AdaBoost model) consulted only for
// sessions the first two stages leave undecided after `escalate_after`
// requests.
#ifndef ROBODET_SRC_CORE_STAGED_PIPELINE_H_
#define ROBODET_SRC_CORE_STAGED_PIPELINE_H_

#include <functional>

#include "src/core/browser_test_detector.h"
#include "src/core/human_activity_detector.h"
#include "src/core/signals.h"
#include "src/core/verdict.h"
#include "src/obs/metrics.h"

namespace robodet {

class StagedPipeline {
 public:
  struct Options {
    BrowserTestDetector::Options browser_test;
    HumanActivityDetector::Options human_activity;
    // Consult stage 3 only once the session has this many requests.
    int escalate_after = 40;
  };

  struct Decision {
    Classification classification;
    // 0 = undecided, 1 = browser test, 2 = human activity, 3 = fallback.
    int stage = 0;
  };

  using FallbackJudge = std::function<Verdict(const SessionObservation&)>;

  explicit StagedPipeline(Options options, FallbackJudge fallback = nullptr)
      : options_(options),
        browser_test_(options.browser_test),
        human_activity_(options.human_activity),
        fallback_(std::move(fallback)) {}

  Decision Decide(const SessionObservation& obs) const;

  // Counts decisions per stage into `registry` as
  // robodet_staged_decisions_total{stage=...}.
  void BindMetrics(MetricsRegistry* registry);

 private:
  struct Metrics {
    Counter* browser_test = nullptr;
    Counter* human_activity = nullptr;
    Counter* fallback = nullptr;
    Counter* undecided = nullptr;
  };

  Options options_;
  Metrics metrics_;
  BrowserTestDetector browser_test_;
  HumanActivityDetector human_activity_;
  FallbackJudge fallback_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_STAGED_PIPELINE_H_
