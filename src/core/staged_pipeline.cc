#include "src/core/staged_pipeline.h"

namespace robodet {

void StagedPipeline::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.browser_test = registry->FindOrCreateCounter("robodet_staged_decisions_total",
                                                        {{"stage", "browser_test"}});
  metrics_.human_activity = registry->FindOrCreateCounter("robodet_staged_decisions_total",
                                                          {{"stage", "human_activity"}});
  metrics_.fallback =
      registry->FindOrCreateCounter("robodet_staged_decisions_total", {{"stage", "fallback"}});
  metrics_.undecided =
      registry->FindOrCreateCounter("robodet_staged_decisions_total", {{"stage", "undecided"}});
}

StagedPipeline::Decision StagedPipeline::Decide(const SessionObservation& obs) const {
  Decision out;

  // Hard evidence from the activity detector trumps stage ordering in both
  // directions: a key match proves a human even if the browser test thinks
  // otherwise, and a wrong-key (decoy) fetch proves a robot even if it
  // politely downloaded the CSS probe to blend in. The *staging* is about
  // latency (which check can decide earliest), not about precedence.
  Classification activity = human_activity_.Classify(obs);
  if (activity.verdict != Verdict::kUnknown) {
    out.classification = std::move(activity);
    out.stage = 2;
    IncIfBound(metrics_.human_activity);
    return out;
  }

  Classification browser = browser_test_.Classify(obs);
  if (browser.verdict != Verdict::kUnknown) {
    out.classification = std::move(browser);
    out.stage = 1;
    IncIfBound(metrics_.browser_test);
    return out;
  }
  if (fallback_ && obs.request_count >= options_.escalate_after) {
    const Verdict v = fallback_(obs);
    if (v != Verdict::kUnknown) {
      out.classification.verdict = v;
      out.classification.decided_at = obs.request_count;
      out.classification.evidence.push_back(
          {"staged_fallback", "ml_judge", obs.request_count, v});
      out.stage = 3;
      IncIfBound(metrics_.fallback);
      return out;
    }
  }
  out.classification.verdict = Verdict::kUnknown;
  IncIfBound(metrics_.undecided);
  return out;
}

}  // namespace robodet
