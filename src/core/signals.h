// The shared vocabulary between the instrumenting proxy (which *produces*
// observations) and the detectors (which *consume* them): per-request
// events and per-session first-detection signal indices.
#ifndef ROBODET_SRC_CORE_SIGNALS_H_
#define ROBODET_SRC_CORE_SIGNALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/http/content_type.h"
#include "src/util/clock.h"

namespace robodet {

// Compact per-request record. The ML feature extractor aggregates these;
// keeping them per-request (rather than as running counters only) is what
// lets Figure 4 build classifiers "at the first N requests".
struct RequestEvent {
  ResourceKind kind = ResourceKind::kOther;
  uint8_t status_class = 2;  // 2, 3, 4 or 5.
  bool is_head = false;
  bool has_referrer = false;
  // Referrer named a URL this session was never served (referrer spam
  // signature).
  bool unseen_referrer = false;
  // Requested URL was an embedded object of a previously served page.
  bool is_embedded = false;
  // Requested URL was a link of a previously served page.
  bool is_link_follow = false;
  bool is_favicon = false;
};

// First-detection request indices, 1-based; 0 means "never observed".
// One per signal of Table 1 / Figure 2.
struct SessionSignals {
  int css_probe_at = 0;      // Downloaded an injected CSS probe.
  int js_download_at = 0;    // Downloaded the injected beacon script file.
  int js_executed_at = 0;    // UA-echo stylesheet fetched: executed JS.
  int mouse_event_at = 0;    // Beacon image with the correct key k.
  int wrong_key_at = 0;      // Beacon image with a wrong/decoy key.
  int hidden_link_at = 0;    // Followed the invisible link trap.
  int ua_mismatch_at = 0;    // Echoed runtime agent != User-Agent header.
  int captcha_passed_at = 0;
  int captcha_failed_at = 0;
  // Fetched /robots.txt — a protocol-compliant self-identification; humans
  // essentially never request it (§5: the exclusion protocol is advisory,
  // but a client that consults it is certainly automated).
  int robots_txt_at = 0;
  // Silent-audio probe fetched (§2.2's alternative to the CSS probe).
  int audio_probe_at = 0;
  // §4.1 extension: beacon hit whose input event carried a valid hardware
  // attestation (trusted input architecture).
  int attested_mouse_at = 0;
  // Beacon key matched but attestation was required and missing/invalid:
  // a synthesized event.
  int unattested_event_at = 0;

  // Lowercased, sanitized agent string the client's *runtime* reported via
  // the UA-echo script (vs. the forgeable header).
  std::string ua_echo_agent;

  bool DownloadedCssProbe() const { return css_probe_at > 0; }
  bool DownloadedAudioProbe() const { return audio_probe_at > 0; }
  bool DownloadedJs() const { return js_download_at > 0; }
  bool ExecutedJs() const { return js_executed_at > 0; }
  bool MouseActivity() const { return mouse_event_at > 0; }
  bool WrongBeaconKey() const { return wrong_key_at > 0; }
  bool FollowedHiddenLink() const { return hidden_link_at > 0; }
  bool UaMismatch() const { return ua_mismatch_at > 0; }
  bool PassedCaptcha() const { return captcha_passed_at > 0; }
  bool FetchedRobotsTxt() const { return robots_txt_at > 0; }
  bool AttestedMouse() const { return attested_mouse_at > 0; }
  bool UnattestedEvent() const { return unattested_event_at > 0; }
};

// Everything a detector is allowed to look at. Live sessions expose one;
// archived SessionRecords carry one, so the same classifiers run online at
// the proxy and offline over experiment logs.
struct SessionObservation {
  SessionSignals signals;
  int request_count = 0;
  int instrumented_pages = 0;
  // Request indices (1-based) at which instrumented pages were served,
  // capped; lets the browser test date its probe-deaf verdict.
  std::vector<int> instrumented_page_indices;

  // Index of the n-th (1-based) instrumented page, 0 if fewer than n.
  int InstrumentedPageRequestIndex(int n) const {
    if (n <= 0 || static_cast<size_t>(n) > instrumented_page_indices.size()) {
      return 0;
    }
    return instrumented_page_indices[static_cast<size_t>(n) - 1];
  }
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_SIGNALS_H_
