#include "src/core/human_activity_detector.h"

namespace robodet {

HumanActivityDetector::HumanActivityDetector() : options_(Options{}) {}

Classification HumanActivityDetector::Classify(const SessionObservation& obs) const {
  Classification out;
  const SessionSignals& sig = obs.signals;

  // Wrong-key evidence dominates: a robot that blindly fetches every
  // embedded object hits the real beacon too, so a key match in the
  // presence of decoy fetches proves nothing.
  if (options_.unattested_event_is_robot && sig.UnattestedEvent()) {
    // A beacon fired with the right key but no hardware attestation while
    // attestation was mandatory: a synthesized input event.
    out.verdict = Verdict::kRobot;
    out.decided_at = sig.unattested_event_at;
    out.evidence.push_back({"human_activity", "unattested_input_event",
                            sig.unattested_event_at, Verdict::kRobot});
    return out;
  }
  if (sig.WrongBeaconKey()) {
    out.verdict = Verdict::kRobot;
    out.decided_at = sig.wrong_key_at;
    out.evidence.push_back(
        {"human_activity", "wrong_beacon_key", sig.wrong_key_at, Verdict::kRobot});
    return out;
  }
  if (sig.MouseActivity()) {
    out.verdict = Verdict::kHuman;
    out.decided_at = sig.mouse_event_at;
    out.evidence.push_back(
        {"human_activity", "mouse_event_key_match", sig.mouse_event_at, Verdict::kHuman});
    return out;
  }
  if (sig.ExecutedJs() && obs.request_count >= options_.js_no_mouse_patience) {
    // Runs our script, never moves the mouse: the S_JS - S_MM set.
    out.verdict = Verdict::kRobot;
    out.decided_at = obs.request_count;
    out.evidence.push_back(
        {"human_activity", "js_executed_no_mouse", sig.js_executed_at, Verdict::kRobot});
    return out;
  }
  out.verdict = Verdict::kUnknown;
  return out;
}

}  // namespace robodet
