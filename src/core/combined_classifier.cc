#include "src/core/combined_classifier.h"

namespace robodet {

CombinedClassifier::CombinedClassifier() : CombinedClassifier(Options{}) {}

Verdict CombinedClassifier::SetAlgebraVerdict(const SessionSignals& signals) {
  const bool in_css = InCssSet(signals);
  const bool in_mm = InMouseSet(signals);
  const bool in_js = InJsSet(signals);
  const bool in_human = (in_css || in_mm) && !(in_js && !in_mm);
  return in_human ? Verdict::kHuman : Verdict::kRobot;
}

Classification CombinedClassifier::ClassifyOnline(const SessionObservation& obs) const {
  // Mouse activity is the strongest human signal — check it first so that a
  // human who once tripped a weak robot heuristic is not misjudged.
  const SessionSignals& sig = obs.signals;
  Classification human = human_activity_.Classify(obs);
  if (human.verdict == Verdict::kHuman) {
    return human;
  }
  Classification browser = browser_test_.Classify(obs);
  if (human.verdict == Verdict::kRobot) {
    // Hard robot evidence from the activity detector (wrong key or
    // JS-no-mouse) dominates a CSS fetch: robots may fetch CSS too.
    return human;
  }
  if (browser.verdict == Verdict::kRobot) {
    return browser;
  }
  if (browser.verdict == Verdict::kHuman && !sig.ExecutedJs()) {
    // CSS probe fetched and no JS signal yet: JS-disabled browser-like
    // client. Human per the set algebra.
    return browser;
  }
  if (browser.verdict == Verdict::kHuman) {
    // CSS fetched, JS executed, no mouse yet: stay undecided until the
    // activity detector's patience runs out.
    Classification out;
    out.verdict = Verdict::kUnknown;
    out.evidence = std::move(browser.evidence);
    return out;
  }
  Classification out;
  out.verdict = Verdict::kUnknown;
  return out;
}

}  // namespace robodet
