#include "src/core/combined_classifier.h"

namespace robodet {

CombinedClassifier::CombinedClassifier() : CombinedClassifier(Options{}) {}

Verdict CombinedClassifier::SetAlgebraVerdict(const SessionSignals& signals) {
  const bool in_css = InCssSet(signals);
  const bool in_mm = InMouseSet(signals);
  const bool in_js = InJsSet(signals);
  const bool in_human = (in_css || in_mm) && !(in_js && !in_mm);
  return in_human ? Verdict::kHuman : Verdict::kRobot;
}

void CombinedClassifier::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.human =
      registry->FindOrCreateCounter("robodet_classify_online_total", {{"verdict", "human"}});
  metrics_.robot =
      registry->FindOrCreateCounter("robodet_classify_online_total", {{"verdict", "robot"}});
  metrics_.unknown =
      registry->FindOrCreateCounter("robodet_classify_online_total", {{"verdict", "unknown"}});
}

Classification CombinedClassifier::ClassifyOnline(const SessionObservation& obs) const {
  Classification out = ClassifyOnlineUncounted(obs);
  switch (out.verdict) {
    case Verdict::kHuman:
      IncIfBound(metrics_.human);
      break;
    case Verdict::kRobot:
      IncIfBound(metrics_.robot);
      break;
    case Verdict::kUnknown:
      IncIfBound(metrics_.unknown);
      break;
  }
  return out;
}

Classification CombinedClassifier::ClassifyOnlineUncounted(const SessionObservation& obs) const {
  // Mouse activity is the strongest human signal — check it first so that a
  // human who once tripped a weak robot heuristic is not misjudged.
  const SessionSignals& sig = obs.signals;
  Classification human = human_activity_.Classify(obs);
  if (human.verdict == Verdict::kHuman) {
    return human;
  }
  Classification browser = browser_test_.Classify(obs);
  if (human.verdict == Verdict::kRobot) {
    // Hard robot evidence from the activity detector (wrong key or
    // JS-no-mouse) dominates a CSS fetch: robots may fetch CSS too.
    return human;
  }
  if (browser.verdict == Verdict::kRobot) {
    return browser;
  }
  if (browser.verdict == Verdict::kHuman && !sig.ExecutedJs()) {
    // CSS probe fetched and no JS signal yet: JS-disabled browser-like
    // client. Human per the set algebra.
    return browser;
  }
  if (browser.verdict == Verdict::kHuman) {
    // CSS fetched, JS executed, no mouse yet: stay undecided until the
    // activity detector's patience runs out.
    Classification out;
    out.verdict = Verdict::kUnknown;
    out.evidence = std::move(browser.evidence);
    return out;
  }
  Classification out;
  out.verdict = Verdict::kUnknown;
  return out;
}

}  // namespace robodet
