// Human activity detection (§2.1): a session is human when it has fetched
// a beacon image carrying the correct per-(client, page) key k — proof of
// a mouse/keyboard event handler firing. A session that executed the
// injected JavaScript (UA echo observed) but produced no such event is
// definitely a robot; so is one that fetched a wrong (decoy) key.
#ifndef ROBODET_SRC_CORE_HUMAN_ACTIVITY_DETECTOR_H_
#define ROBODET_SRC_CORE_HUMAN_ACTIVITY_DETECTOR_H_

#include "src/core/signals.h"
#include "src/core/verdict.h"

namespace robodet {

class HumanActivityDetector {
 public:
  struct Options {
    // A JS-capable session with no mouse event is only called a robot after
    // it has had this many requests' worth of opportunity to move a mouse.
    int js_no_mouse_patience = 20;
    // §4.1 extension: treat an unattested beacon event as robot evidence
    // (only meaningful when the proxy requires attestation).
    bool unattested_event_is_robot = true;
  };

  HumanActivityDetector();
  explicit HumanActivityDetector(Options options) : options_(options) {}

  Classification Classify(const SessionObservation& obs) const;

 private:
  Options options_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_CORE_HUMAN_ACTIVITY_DETECTOR_H_
