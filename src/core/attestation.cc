#include "src/core/attestation.h"

#include <cstdio>

#include "src/util/hash.h"
#include "src/util/strings.h"

namespace robodet {
namespace {

std::string ToHex16(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::optional<uint64_t> FromHex(std::string_view s) {
  if (s.empty() || s.size() > 16) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

}  // namespace

std::string AttestationAuthority::Mac(uint64_t secret, std::string_view payload) {
  return ToHex16(HashCombine(Fnv1a(payload, secret ^ kFnvOffset), secret));
}

TrustedInputDevice AttestationAuthority::ManufactureDevice() {
  const uint64_t id = next_id_++;
  // Derive the per-device secret from the authority seed; in the real
  // architecture this is the key burned in at manufacture.
  seed_ = HashCombine(seed_, id * 0x9e3779b97f4a7c15ULL);
  const uint64_t secret = seed_;
  secrets_[id] = secret;
  return TrustedInputDevice(id, secret);
}

bool AttestationAuthority::Verify(uint64_t device_id, std::string_view payload,
                                  std::string_view mac) const {
  const auto it = secrets_.find(device_id);
  if (it == secrets_.end()) {
    return false;
  }
  return Mac(it->second, payload) == mac;
}

std::optional<AttestationAuthority::ParsedHeader> AttestationAuthority::ParseHeader(
    std::string_view value) {
  const size_t colon = value.find(':');
  if (colon == std::string_view::npos) {
    return std::nullopt;
  }
  const auto id = FromHex(value.substr(0, colon));
  if (!id.has_value()) {
    return std::nullopt;
  }
  ParsedHeader out;
  out.device_id = *id;
  out.mac = std::string(value.substr(colon + 1));
  return out;
}

std::string TrustedInputDevice::Attest(std::string_view payload) const {
  return AttestationAuthority::Mac(secret_, payload);
}

std::string TrustedInputDevice::HeaderValue(std::string_view payload) const {
  return ToHex16(device_id_) + ":" + Attest(payload);
}

}  // namespace robodet
