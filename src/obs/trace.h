// Per-request trace spans through the proxy pipeline. A traced request
// produces a RequestTrace: an ordered list of named spans (parse →
// rewrite/inject → probe intercept → session update → classify → policy)
// with nanosecond timings and optional notes. The recorder head-samples
// 1/N requests (plus any the caller forces), keeps the last `capacity`
// traces in a ring, and tail-samples on eviction: traces that ended in a
// blocked request or a robot verdict are retained in preference to
// ordinary ones, so the interesting evidence survives ring pressure.
#ifndef ROBODET_SRC_OBS_TRACE_H_
#define ROBODET_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace robodet {

// Wall-clock monotonic nanoseconds (std::chrono::steady_clock). Distinct
// from SimClock, which is simulated time: span durations measure real
// compute cost even inside a simulation.
uint64_t MonotonicNanos();

struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  int depth = 0;       // Nesting level; 0 = direct child of the request.
  std::string note;    // Optional "key=value" annotations.
};

struct RequestTrace {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  std::string path;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  bool blocked = false;
  std::string verdict;         // "", "human", "robot", "unknown".
  std::string verdict_source;  // Detector/signal behind the verdict.
  bool forced = false;         // Traced because the caller forced it, not by dice.
  std::vector<TraceSpan> spans;

  // Tail-sampling predicate: traces worth keeping under ring pressure.
  bool Interesting() const { return blocked || verdict == "robot"; }
};

class TraceRecorder {
 public:
  struct Config {
    size_t capacity = 128;
    // Head-sample one request in `sample_every`; 1 traces everything,
    // 0 traces nothing except forced requests.
    uint32_t sample_every = 64;
    // Injectable time source for deterministic tests.
    std::function<uint64_t()> now_ns;
  };

  // Span builder for one in-flight request. Obtained from Start(); spans
  // are recorded in call order and closed LIFO by SpanScope.
  class Trace {
   public:
    int OpenSpan(std::string_view name);
    void CloseSpan(int index);
    void AnnotateSpan(int index, std::string_view note);
    void set_session_id(uint64_t id) { record_.session_id = id; }
    void SetOutcome(bool blocked, std::string_view verdict, std::string_view source);

   private:
    friend class TraceRecorder;
    RequestTrace record_;
    TraceRecorder* owner_ = nullptr;
    int open_depth_ = 0;
  };

  explicit TraceRecorder(Config config);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Returns the span builder for this request, or nullptr when the
  // request is not sampled. Every non-null return must be paired with
  // Finish() (or Discard()).
  Trace* Start(std::string_view path, bool force = false);
  void Finish(Trace* trace);
  void Discard(Trace* trace);

  // Copies the ring, oldest first.
  std::vector<RequestTrace> Snapshot() const;

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }
  uint64_t retained() const;
  uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }
  const Config& config() const { return config_; }

 private:
  uint64_t Now() const { return config_.now_ns ? config_.now_ns() : MonotonicNanos(); }

  Config config_;
  std::atomic<uint64_t> request_counter_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> evicted_{0};
  mutable std::mutex mu_;
  std::deque<RequestTrace> ring_;
};

// RAII span: opens on construction (no-op when the request is untraced),
// closes on destruction.
class SpanScope {
 public:
  SpanScope(TraceRecorder::Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) {
      index_ = trace_->OpenSpan(name);
    }
  }
  ~SpanScope() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(index_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void Annotate(std::string_view note) {
    if (trace_ != nullptr) {
      trace_->AnnotateSpan(index_, note);
    }
  }

 private:
  TraceRecorder::Trace* trace_;
  int index_ = -1;
};

// RAII trace: starts the request's trace (if sampled) and finishes it on
// scope exit, handing the record to the ring.
class TraceScope {
 public:
  TraceScope(TraceRecorder* recorder, std::string_view path, bool force = false)
      : recorder_(recorder),
        trace_(recorder != nullptr ? recorder->Start(path, force) : nullptr) {}
  ~TraceScope() {
    if (trace_ != nullptr) {
      recorder_->Finish(trace_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  TraceRecorder::Trace* get() const { return trace_; }

 private:
  TraceRecorder* recorder_;
  TraceRecorder::Trace* trace_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_OBS_TRACE_H_
