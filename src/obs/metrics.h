// Metrics registry for the detection pipeline: named counters, gauges and
// fixed-bucket histograms, each addressable by a label set (e.g.
// probe_hits_total{kind=css}). The write path is lock-free: every thread
// owns a shard of plain relaxed-atomic cells it alone increments, and a
// scrape merges the shards. Creation (FindOrCreate*) takes a mutex and is
// meant to happen once at wiring time; callers keep the returned handle
// and hit only their own shard afterwards.
//
// Layering: obs sits directly above util — everything from core up may
// depend on it, so detectors, tables, the proxy and the sim gateway can
// all report into one registry.
#ifndef ROBODET_SRC_OBS_METRICS_H_
#define ROBODET_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace robodet {

// One label dimension. Label order is irrelevant: the registry
// canonicalizes by sorting on key, so {a=1,b=2} and {b=2,a=1} name the
// same time series.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label& a, const Label& b) {
    return a.key == b.key && a.value == b.value;
  }
};

using Labels = std::vector<Label>;

enum class MetricKind {
  kCounter,
  kGauge,
  kHistogram,
};

std::string_view MetricKindName(MetricKind kind);

// Point-in-time view of one histogram: `bounds` are the inclusive upper
// edges of the finite buckets; `counts` has one extra slot for +Inf.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  // Quantile estimate by linear interpolation within the bucket that
  // crosses rank q*count. The +Inf bucket reports its lower edge (there
  // is no upper edge to interpolate toward). Empty histogram returns 0.
  double Quantile(double q) const;
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;  // Canonical (key-sorted) order.
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot histogram;
};

// The merged view a scrape produces; metrics are sorted by name, then by
// canonical label serialization, so exports are deterministic.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* Find(std::string_view name, const Labels& labels = {}) const;
  // 0 when the counter does not exist (never minted = never incremented).
  uint64_t CounterValue(std::string_view name, const Labels& labels = {}) const;
};

class MetricsRegistry;

// Monotonic counter handle. Inc() is safe from any thread and lock-free
// (one relaxed fetch_add on a cell in the calling thread's shard).
class Counter {
 public:
  void Inc(uint64_t n = 1);
  // Merged value across all shards.
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, uint32_t cell) : registry_(registry), cell_(cell) {}

  MetricsRegistry* registry_;
  uint32_t cell_;
};

// Gauges are set-dominant (last write wins across threads), so they live
// in a single shared atomic rather than per-thread shards.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. Observe() is lock-free: bucket counts are shard
// cells; the running sum is a shared atomic<double> (relaxed fetch_add).
class HistogramMetric {
 public:
  void Observe(double x);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  HistogramMetric(MetricsRegistry* registry, std::vector<double> bounds, uint32_t first_cell)
      : registry_(registry), bounds_(std::move(bounds)), first_cell_(first_cell) {}

  MetricsRegistry* registry_;
  std::vector<double> bounds_;  // Sorted ascending; cell i counts x <= bounds_[i].
  uint32_t first_cell_;         // bounds_.size() + 1 consecutive cells.
  std::atomic<double> sum_{0.0};
};

// Instrumentation points bind counters lazily (a component without a
// registry keeps working); this keeps the null checks out of the way.
inline void IncIfBound(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Inc(n);
  }
}

// Evenly spaced bucket edges helper: {step, 2*step, ..., n*step}.
std::vector<double> LinearBuckets(double step, size_t n);
// Exponential edges: {start, start*factor, ..., start*factor^(n-1)}.
std::vector<double> ExponentialBuckets(double start, double factor, size_t n);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Interns (name, labels) and returns a stable handle, creating the
  // metric on first use. Returns nullptr if the pair already exists with
  // a different kind (or, for histograms, different bucket bounds).
  Counter* FindOrCreateCounter(std::string_view name, const Labels& labels = {});
  Gauge* FindOrCreateGauge(std::string_view name, const Labels& labels = {});
  HistogramMetric* FindOrCreateHistogram(std::string_view name, std::vector<double> bounds,
                                         const Labels& labels = {});

  // Merges every thread's shard into a sorted snapshot.
  RegistrySnapshot Scrape() const;

  // Number of per-thread shards materialized so far.
  size_t shard_count() const;

 private:
  friend class Counter;
  friend class HistogramMetric;

  // Cells live in fixed-size blocks so a growing registry never moves a
  // cell another thread is writing.
  static constexpr size_t kCellsPerBlock = 256;
  static constexpr size_t kMaxBlocks = 1024;

  struct Shard {
    ~Shard();
    // Owner-thread only; allocates the enclosing block on first touch.
    std::atomic<uint64_t>& Cell(uint32_t id);
    // Any thread; 0 when the block was never allocated.
    uint64_t Peek(uint32_t id) const;

    std::atomic<std::atomic<uint64_t>*> blocks[kMaxBlocks] = {};
  };

  struct Entry {
    std::string name;
    MetricKind kind;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Shard& LocalShard();
  void AddToCell(uint32_t cell, uint64_t n);
  uint64_t CellValue(uint32_t cell) const;
  uint32_t AllocateCells(uint32_t n);  // Caller holds mu_.

  const uint64_t registry_id_;  // Globally unique; keys the thread-local shard cache.
  mutable std::mutex mu_;
  uint32_t next_cell_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, Entry> entries_;  // Keyed by canonical name+labels.
};

}  // namespace robodet

#endif  // ROBODET_SRC_OBS_METRICS_H_
