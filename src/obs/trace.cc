#include "src/obs/trace.h"

#include <chrono>

namespace robodet {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

int TraceRecorder::Trace::OpenSpan(std::string_view name) {
  TraceSpan span;
  span.name = std::string(name);
  span.start_ns = owner_->Now();
  span.depth = open_depth_;
  ++open_depth_;
  record_.spans.push_back(std::move(span));
  return static_cast<int>(record_.spans.size()) - 1;
}

void TraceRecorder::Trace::CloseSpan(int index) {
  if (index < 0 || static_cast<size_t>(index) >= record_.spans.size()) {
    return;
  }
  TraceSpan& span = record_.spans[static_cast<size_t>(index)];
  span.duration_ns = owner_->Now() - span.start_ns;
  if (open_depth_ > 0) {
    --open_depth_;
  }
}

void TraceRecorder::Trace::AnnotateSpan(int index, std::string_view note) {
  if (index < 0 || static_cast<size_t>(index) >= record_.spans.size()) {
    return;
  }
  std::string& existing = record_.spans[static_cast<size_t>(index)].note;
  if (!existing.empty()) {
    existing += ' ';
  }
  existing += std::string(note);
}

void TraceRecorder::Trace::SetOutcome(bool blocked, std::string_view verdict,
                                      std::string_view source) {
  record_.blocked = blocked;
  record_.verdict = std::string(verdict);
  record_.verdict_source = std::string(source);
}

TraceRecorder::TraceRecorder(Config config) : config_(config) {
  if (config_.capacity == 0) {
    config_.capacity = 1;
  }
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Trace* TraceRecorder::Start(std::string_view path, bool force) {
  const uint64_t seq = request_counter_.fetch_add(1, std::memory_order_relaxed);
  const bool sampled = config_.sample_every != 0 && seq % config_.sample_every == 0;
  if (!sampled && !force) {
    return nullptr;
  }
  auto* trace = new Trace();
  trace->owner_ = this;
  trace->record_.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace->record_.path = std::string(path);
  trace->record_.start_ns = Now();
  trace->record_.forced = force && !sampled;
  started_.fetch_add(1, std::memory_order_relaxed);
  return trace;
}

void TraceRecorder::Finish(Trace* trace) {
  if (trace == nullptr) {
    return;
  }
  trace->record_.duration_ns = Now() - trace->record_.start_ns;
  RequestTrace record = std::move(trace->record_);
  delete trace;

  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= config_.capacity) {
    // Tail-sampling eviction: drop the oldest ordinary trace first; only
    // when every retained trace is interesting does age alone decide.
    auto victim = ring_.end();
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
      if (!it->Interesting()) {
        victim = it;
        break;
      }
    }
    if (victim == ring_.end()) {
      victim = ring_.begin();
    }
    ring_.erase(victim);
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(record));
}

void TraceRecorder::Discard(Trace* trace) { delete trace; }

std::vector<RequestTrace> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t TraceRecorder::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace robodet
