#include "src/obs/exporters.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/strings.h"

namespace robodet {
namespace {

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatMicros(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1000.0);
  return buf;
}

// Prometheus label-value escaping: backslash, quote, newline.
std::string PromEscape(std::string_view s) {
  std::string out = ReplaceAll(s, "\\", "\\\\");
  out = ReplaceAll(out, "\"", "\\\"");
  out = ReplaceAll(out, "\n", "\\n");
  return out;
}

// {a="1",b="2"} with an optional extra label (used for `le`); empty
// string when there are no labels at all.
std::string PromLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) {
    return "";
  }
  std::string out = "{";
  for (const Label& label : labels) {
    if (out.size() > 1) {
      out += ',';
    }
    out += label.key + "=\"" + PromEscape(label.value) + "\"";
  }
  if (!extra.empty()) {
    if (out.size() > 1) {
      out += ',';
    }
    out += extra;
  }
  out += '}';
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (const Label& label : labels) {
    if (out.size() > 1) {
      out += ',';
    }
    out += "\"" + JsonEscape(label.key) + "\":\"" + JsonEscape(label.value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string ExportPrometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != last_family) {
      out += "# TYPE " + m.name + " " + std::string(MetricKindName(m.kind)) + "\n";
      last_family = m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += m.name + PromLabels(m.labels) + " " + FormatU64(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += m.name + PromLabels(m.labels) + " " + std::to_string(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.counts.size(); ++i) {
          cumulative += m.histogram.counts[i];
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "+Inf";
          out += m.name + "_bucket" + PromLabels(m.labels, "le=\"" + le + "\"") + " " +
                 FormatU64(cumulative) + "\n";
        }
        out += m.name + "_sum" + PromLabels(m.labels) + " " + FormatNumber(m.histogram.sum) +
               "\n";
        out += m.name + "_count" + PromLabels(m.labels) + " " + FormatU64(m.histogram.count) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"" + JsonEscape(m.name) + "\",\"kind\":\"" +
           std::string(MetricKindName(m.kind)) + "\",\"labels\":" + JsonLabels(m.labels);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + FormatU64(m.counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(m.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + FormatU64(m.histogram.count) +
               ",\"sum\":" + FormatNumber(m.histogram.sum) + ",\"buckets\":[";
        for (size_t i = 0; i < m.histogram.counts.size(); ++i) {
          if (i > 0) {
            out += ',';
          }
          const std::string le = i < m.histogram.bounds.size()
                                     ? FormatNumber(m.histogram.bounds[i])
                                     : "\"+Inf\"";
          out += "{\"le\":" + le + ",\"count\":" + FormatU64(m.histogram.counts[i]) + "}";
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string FormatTraceText(const RequestTrace& trace) {
  std::string out = "trace " + FormatU64(trace.trace_id) + " path=" + trace.path +
                    " session=" + FormatU64(trace.session_id);
  if (!trace.verdict.empty()) {
    out += " verdict=" + trace.verdict;
  }
  if (!trace.verdict_source.empty()) {
    out += " source=" + trace.verdict_source;
  }
  if (trace.blocked) {
    out += " blocked";
  }
  if (trace.forced) {
    out += " forced";
  }
  out += " total=" + FormatMicros(trace.duration_ns) + "\n";
  for (const TraceSpan& span : trace.spans) {
    out.append(2 + 2 * static_cast<size_t>(span.depth), ' ');
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s %s", span.name.c_str(),
                  FormatMicros(span.duration_ns).c_str());
    out += line;
    if (!span.note.empty()) {
      out += " [" + span.note + "]";
    }
    out += '\n';
  }
  return out;
}

std::string ExportTracesJson(const std::vector<RequestTrace>& traces) {
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (const RequestTrace& trace : traces) {
    if (!first_trace) {
      out += ',';
    }
    first_trace = false;
    out += "{\"trace_id\":" + FormatU64(trace.trace_id) +
           ",\"session_id\":" + FormatU64(trace.session_id) + ",\"path\":\"" +
           JsonEscape(trace.path) + "\",\"duration_ns\":" + FormatU64(trace.duration_ns) +
           ",\"blocked\":" + (trace.blocked ? "true" : "false") + ",\"verdict\":\"" +
           JsonEscape(trace.verdict) + "\",\"verdict_source\":\"" +
           JsonEscape(trace.verdict_source) + "\",\"spans\":[";
    bool first_span = true;
    for (const TraceSpan& span : trace.spans) {
      if (!first_span) {
        out += ',';
      }
      first_span = false;
      out += "{\"name\":\"" + JsonEscape(span.name) +
             "\",\"depth\":" + std::to_string(span.depth) +
             ",\"duration_ns\":" + FormatU64(span.duration_ns);
      if (!span.note.empty()) {
        out += ",\"note\":\"" + JsonEscape(span.note) + "\"";
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace robodet
