// Serializers for scraped metrics and recorded traces: the Prometheus
// text exposition format (what an operator's scrape endpoint would
// return) and a JSON snapshot (what dashboards and the robodet_metrics
// CLI consume), plus a human-readable trace timeline renderer.
#ifndef ROBODET_SRC_OBS_EXPORTERS_H_
#define ROBODET_SRC_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace robodet {

// Prometheus text format, version 0.0.4: one "# TYPE" line per metric
// family, histograms expanded into _bucket{le=...}/_sum/_count series.
std::string ExportPrometheus(const RegistrySnapshot& snapshot);

// One JSON object: {"metrics":[{name, kind, labels, ...}, ...]}.
std::string ExportJson(const RegistrySnapshot& snapshot);

// Indented per-span timeline of one trace for terminal reading.
std::string FormatTraceText(const RequestTrace& trace);

// JSON array of traces with their span lists.
std::string ExportTracesJson(const std::vector<RequestTrace>& traces);

}  // namespace robodet

#endif  // ROBODET_SRC_OBS_EXPORTERS_H_
