#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace robodet {
namespace {

std::atomic<uint64_t> g_next_registry_id{1};

// Canonical map key: name \x1f key \x1e value \x1e key \x1e value...
// (control separators cannot appear in sane metric or label names).
std::string CanonicalKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  key.push_back('\x1f');
  for (const Label& label : labels) {
    key += label.key;
    key.push_back('\x1e');
    key += label.value;
    key.push_back('\x1e');
  }
  return key;
}

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return labels;
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) {
        return lo;  // +Inf bucket: no upper edge to interpolate toward.
      }
      const double hi = bounds[i];
      const double into = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name, const Labels& labels) const {
  const Labels canonical = Canonicalize(labels);
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == canonical) {
      return &m;
    }
  }
  return nullptr;
}

uint64_t RegistrySnapshot::CounterValue(std::string_view name, const Labels& labels) const {
  const MetricSnapshot* m = Find(name, labels);
  return m != nullptr && m->kind == MetricKind::kCounter ? m->counter : 0;
}

void Counter::Inc(uint64_t n) { registry_->AddToCell(cell_, n); }

uint64_t Counter::Value() const { return registry_->CellValue(cell_); }

void HistogramMetric::Observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const uint32_t bucket = static_cast<uint32_t>(it - bounds_.begin());
  registry_->AddToCell(first_cell_ + bucket, 1);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

HistogramSnapshot HistogramMetric::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    snap.counts[i] = registry_->CellValue(first_cell_ + static_cast<uint32_t>(i));
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> LinearBuckets(double step, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    out.push_back(step * static_cast<double>(i));
  }
  return out;
}

std::vector<double> ExponentialBuckets(double start, double factor, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double edge = start;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

MetricsRegistry::Shard::~Shard() {
  for (auto& block : blocks) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

std::atomic<uint64_t>& MetricsRegistry::Shard::Cell(uint32_t id) {
  const size_t block_index = id / kCellsPerBlock;
  std::atomic<uint64_t>* block = blocks[block_index].load(std::memory_order_acquire);
  if (block == nullptr) {
    auto* fresh = new std::atomic<uint64_t>[kCellsPerBlock];
    for (size_t i = 0; i < kCellsPerBlock; ++i) {
      fresh[i].store(0, std::memory_order_relaxed);
    }
    // Only the owner thread writes cells, but scrapers race on the block
    // pointer, so publish with CAS.
    if (blocks[block_index].compare_exchange_strong(block, fresh, std::memory_order_acq_rel)) {
      block = fresh;
    } else {
      delete[] fresh;
    }
  }
  return block[id % kCellsPerBlock];
}

uint64_t MetricsRegistry::Shard::Peek(uint32_t id) const {
  const std::atomic<uint64_t>* block =
      blocks[id / kCellsPerBlock].load(std::memory_order_acquire);
  return block == nullptr ? 0 : block[id % kCellsPerBlock].load(std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  struct ShardCacheEntry {
    uint64_t registry_id;
    Shard* shard;
  };
  // Registry ids are never reused, so a stale cache entry for a destroyed
  // registry can never alias a live one.
  thread_local std::vector<ShardCacheEntry> cache;
  for (const ShardCacheEntry& entry : cache) {
    if (entry.registry_id == registry_id_) {
      return *entry.shard;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.push_back({registry_id_, shard});
  return *shard;
}

void MetricsRegistry::AddToCell(uint32_t cell, uint64_t n) {
  LocalShard().Cell(cell).fetch_add(n, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::CellValue(uint32_t cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->Peek(cell);
  }
  return total;
}

uint32_t MetricsRegistry::AllocateCells(uint32_t n) {
  const uint32_t first = next_cell_;
  next_cell_ += n;
  return first;
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name, const Labels& labels) {
  const Labels canonical = Canonicalize(labels);
  const std::string key = CanonicalKey(name, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kCounter ? it->second.counter.get() : nullptr;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.kind = MetricKind::kCounter;
  entry.labels = canonical;
  entry.counter.reset(new Counter(this, AllocateCells(1)));
  return entries_.emplace(key, std::move(entry)).first->second.counter.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name, const Labels& labels) {
  const Labels canonical = Canonicalize(labels);
  const std::string key = CanonicalKey(name, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.kind = MetricKind::kGauge;
  entry.labels = canonical;
  entry.gauge.reset(new Gauge());
  return entries_.emplace(key, std::move(entry)).first->second.gauge.get();
}

HistogramMetric* MetricsRegistry::FindOrCreateHistogram(std::string_view name,
                                                        std::vector<double> bounds,
                                                        const Labels& labels) {
  std::sort(bounds.begin(), bounds.end());
  const Labels canonical = Canonicalize(labels);
  const std::string key = CanonicalKey(name, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != MetricKind::kHistogram ||
        it->second.histogram->bounds() != bounds) {
      return nullptr;
    }
    return it->second.histogram.get();
  }
  Entry entry;
  entry.name = std::string(name);
  entry.kind = MetricKind::kHistogram;
  entry.labels = canonical;
  const uint32_t cells = static_cast<uint32_t>(bounds.size()) + 1;
  entry.histogram.reset(new HistogramMetric(this, std::move(bounds), AllocateCells(cells)));
  return entries_.emplace(key, std::move(entry)).first->second.histogram.get();
}

RegistrySnapshot MetricsRegistry::Scrape() const {
  RegistrySnapshot snap;
  std::vector<std::pair<std::string, const Entry*>> ordered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordered.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      ordered.emplace_back(key, &entry);
    }
  }
  std::sort(ordered.begin(), ordered.end());
  snap.metrics.reserve(ordered.size());
  for (const auto& [key, entry] : ordered) {
    MetricSnapshot m;
    m.name = entry->name;
    m.kind = entry->kind;
    m.labels = entry->labels;
    switch (entry->kind) {
      case MetricKind::kCounter:
        m.counter = entry->counter->Value();
        break;
      case MetricKind::kGauge:
        m.gauge = entry->gauge->Value();
        break;
      case MetricKind::kHistogram:
        m.histogram = entry->histogram->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

}  // namespace robodet
