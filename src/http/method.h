// HTTP request methods.
#ifndef ROBODET_SRC_HTTP_METHOD_H_
#define ROBODET_SRC_HTTP_METHOD_H_

#include <optional>
#include <string_view>

namespace robodet {

enum class Method {
  kGet,
  kHead,
  kPost,
  kPut,
  kDelete,
  kOptions,
  kConnect,
  kTrace,
};

constexpr std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPost:
      return "POST";
    case Method::kPut:
      return "PUT";
    case Method::kDelete:
      return "DELETE";
    case Method::kOptions:
      return "OPTIONS";
    case Method::kConnect:
      return "CONNECT";
    case Method::kTrace:
      return "TRACE";
  }
  return "GET";
}

// Parses an exact (case-sensitive, per RFC 9110) method token.
std::optional<Method> ParseMethod(std::string_view token);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_METHOD_H_
