#include "src/http/request.h"

#include <cstdio>

#include "src/util/strings.h"

namespace robodet {

std::optional<IpAddress> IpAddress::Parse(std::string_view dotted) {
  const std::vector<std::string> parts = Split(dotted, '.');
  if (parts.size() != 4) {
    return std::nullopt;
  }
  uint32_t v = 0;
  for (const std::string& p : parts) {
    const auto octet = ParseU64(p);
    if (!octet.has_value() || *octet > 255) {
      return std::nullopt;
    }
    v = (v << 8) | static_cast<uint32_t>(*octet);
  }
  return IpAddress(v);
}

std::string IpAddress::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

size_t Request::WireSize() const {
  // "GET <url> HTTP/1.1\r\n" + headers + "\r\n" + body
  return MethodName(method).size() + 1 + url.ToString().size() + 11 + headers.WireSize() + 2 +
         body.size();
}

bool Response::IsHtml() const {
  return ContainsIgnoreCase(ContentType(), "text/html");
}

std::optional<Url> Response::RedirectTarget(const Url& base) const {
  if (!Is3xx(status)) {
    return std::nullopt;
  }
  const auto loc = headers.Get("Location");
  if (!loc.has_value() || loc->empty()) {
    return std::nullopt;
  }
  return base.Resolve(*loc);
}

size_t Response::WireSize() const {
  // "HTTP/1.1 NNN Reason\r\n" + headers + "\r\n" + body
  return 13 + ReasonPhrase(status).size() + headers.WireSize() + 2 + body.size();
}

Response MakeHtmlResponse(std::string body) {
  return MakeResponse(StatusCode::kOk, ResourceKind::kHtml, std::move(body));
}

Response MakeResponse(StatusCode status, ResourceKind kind, std::string body) {
  Response r;
  r.status = status;
  r.headers.Set("Content-Type", MimeTypeFor(kind));
  r.headers.Set("Content-Length", std::to_string(body.size()));
  r.body = std::move(body);
  return r;
}

Response MakeRedirect(const Url& target, StatusCode status) {
  Response r;
  r.status = status;
  r.headers.Set("Location", target.ToString());
  r.headers.Set("Content-Type", "text/html");
  r.body = "<html><body>Moved</body></html>";
  r.headers.Set("Content-Length", std::to_string(r.body.size()));
  return r;
}

}  // namespace robodet
