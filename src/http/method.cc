#include "src/http/method.h"

namespace robodet {

std::optional<Method> ParseMethod(std::string_view token) {
  if (token == "GET") {
    return Method::kGet;
  }
  if (token == "HEAD") {
    return Method::kHead;
  }
  if (token == "POST") {
    return Method::kPost;
  }
  if (token == "PUT") {
    return Method::kPut;
  }
  if (token == "DELETE") {
    return Method::kDelete;
  }
  if (token == "OPTIONS") {
    return Method::kOptions;
  }
  if (token == "CONNECT") {
    return Method::kConnect;
  }
  if (token == "TRACE") {
    return Method::kTrace;
  }
  return std::nullopt;
}

}  // namespace robodet
