#include "src/http/origin_result.h"

namespace robodet {

std::string_view OriginErrorKindName(OriginErrorKind kind) {
  switch (kind) {
    case OriginErrorKind::kTimeout:
      return "timeout";
    case OriginErrorKind::kConnectFail:
      return "connect_fail";
    case OriginErrorKind::kReset:
      return "reset";
    case OriginErrorKind::kServerError:
      return "http_5xx";
    case OriginErrorKind::kTruncatedBody:
      return "truncated_body";
    case OriginErrorKind::kOversizedBody:
      return "oversized_body";
    case OriginErrorKind::kBadContentType:
      return "bad_content_type";
  }
  return "unknown";
}

FallibleOriginHandler WrapInfallibleOrigin(std::function<Response(const Request&)> origin) {
  return [origin = std::move(origin)](const Request& request) {
    return OriginResult::Ok(origin(request));
  };
}

Response SynthesizeOriginErrorResponse(OriginErrorKind kind) {
  const StatusCode status = kind == OriginErrorKind::kTimeout ? StatusCode::kGatewayTimeout
                                                              : StatusCode::kBadGateway;
  Response r = MakeResponse(status, ResourceKind::kHtml,
                            "<html><body>Origin unavailable.</body></html>");
  r.headers.Set("Cache-Control", "no-cache, no-store");
  return r;
}

}  // namespace robodet
