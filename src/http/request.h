// HTTP request/response records as the proxy sees them. These are value
// types: the simulator builds them, the proxy rewrites and annotates them,
// the detectors and feature extractors only read them.
#ifndef ROBODET_SRC_HTTP_REQUEST_H_
#define ROBODET_SRC_HTTP_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/http/content_type.h"
#include "src/http/headers.h"
#include "src/http/method.h"
#include "src/http/status.h"
#include "src/http/url.h"
#include "src/util/clock.h"

namespace robodet {

// IPv4 address; value type with a readable dotted form.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(uint32_t v) : value_(v) {}

  static std::optional<IpAddress> Parse(std::string_view dotted);

  constexpr uint32_t value() const { return value_; }
  std::string ToString() const;

  friend constexpr bool operator==(IpAddress a, IpAddress b) { return a.value_ == b.value_; }
  friend constexpr auto operator<=>(IpAddress a, IpAddress b) { return a.value_ <=> b.value_; }

 private:
  uint32_t value_ = 0;
};

struct Request {
  TimeMs time = 0;
  IpAddress client_ip;
  Method method = Method::kGet;
  Url url;
  Headers headers;
  // Request body (POST forms); empty for bodyless methods.
  std::string body;

  std::string_view UserAgent() const {
    return headers.Get("User-Agent").value_or(std::string_view());
  }
  std::string_view Referrer() const {
    return headers.Get("Referer").value_or(std::string_view());
  }
  bool HasReferrer() const { return headers.Has("Referer"); }

  ResourceKind Kind() const { return ClassifyUrl(url); }

  // Approximate bytes on the wire: request line + headers + CRLF + body.
  size_t WireSize() const;
};

struct Response {
  StatusCode status = StatusCode::kOk;
  Headers headers;
  std::string body;

  std::string_view ContentType() const {
    return headers.Get("Content-Type").value_or(std::string_view());
  }
  bool IsHtml() const;

  // For 3xx responses, the Location target if present.
  std::optional<Url> RedirectTarget(const Url& base) const;

  // Approximate bytes on the wire: status line + headers + CRLF + body.
  size_t WireSize() const;
};

// Convenience factories used throughout the origin server and tests.
Response MakeHtmlResponse(std::string body);
Response MakeResponse(StatusCode status, ResourceKind kind, std::string body);
Response MakeRedirect(const Url& target, StatusCode status = StatusCode::kFound);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_REQUEST_H_
