// Minimal Cache-Control semantics: enough to honor the server-side
// no-cache/no-store markers the paper's instrumentation relies on ("To
// prevent caching the JavaScript file at the client browser, the server
// marks it uncacheable"). A browser model that cached the beacon script
// would reuse stale keys; a model that never cached anything would inflate
// per-page request counts far beyond real traffic. Both errors distort the
// detection CDFs, so cacheability is modeled explicitly.
#ifndef ROBODET_SRC_HTTP_CACHE_CONTROL_H_
#define ROBODET_SRC_HTTP_CACHE_CONTROL_H_

#include <string_view>

#include "src/http/request.h"

namespace robodet {

struct CacheDirectives {
  bool no_cache = false;
  bool no_store = false;
  // max-age seconds if present, -1 otherwise.
  long max_age = -1;
};

// Parses a Cache-Control header value ("no-cache, no-store, max-age=60").
// Unknown directives are ignored.
CacheDirectives ParseCacheControl(std::string_view value);

// True if a shared/private cache may store and reuse this response.
bool IsCacheable(const Response& response);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_CACHE_CONTROL_H_
