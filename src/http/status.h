// HTTP status codes and class predicates. The detectors and the ML features
// only care about the 2xx/3xx/4xx classes, but we keep real codes so the
// origin-server model can emit realistic responses.
#ifndef ROBODET_SRC_HTTP_STATUS_H_
#define ROBODET_SRC_HTTP_STATUS_H_

#include <string_view>

namespace robodet {

enum class StatusCode : int {
  kOk = 200,
  kNoContent = 204,
  kMovedPermanently = 301,
  kFound = 302,
  kNotModified = 304,
  kBadRequest = 400,
  kForbidden = 403,
  kNotFound = 404,
  kRequestTimeout = 408,
  kPayloadTooLarge = 413,
  kTooManyRequests = 429,
  kHeaderFieldsTooLarge = 431,
  kInternalServerError = 500,
  kBadGateway = 502,
  kServiceUnavailable = 503,
  kGatewayTimeout = 504,
};

constexpr int StatusValue(StatusCode s) { return static_cast<int>(s); }

constexpr bool Is2xx(StatusCode s) { return StatusValue(s) / 100 == 2; }
constexpr bool Is3xx(StatusCode s) { return StatusValue(s) / 100 == 3; }
constexpr bool Is4xx(StatusCode s) { return StatusValue(s) / 100 == 4; }
constexpr bool Is5xx(StatusCode s) { return StatusValue(s) / 100 == 5; }

std::string_view ReasonPhrase(StatusCode s);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_STATUS_H_
