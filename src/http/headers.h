// A case-insensitive, order-preserving HTTP header map.
#ifndef ROBODET_SRC_HTTP_HEADERS_H_
#define ROBODET_SRC_HTTP_HEADERS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace robodet {

class Headers {
 public:
  // Replaces all existing values of `name` with one value.
  void Set(std::string_view name, std::string_view value);

  // Appends a value, preserving any existing ones (e.g. Set-Cookie).
  void Add(std::string_view name, std::string_view value);

  // First value for `name`, if present (case-insensitive lookup).
  std::optional<std::string_view> Get(std::string_view name) const;

  // All values for `name` in insertion order.
  std::vector<std::string_view> GetAll(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }

  // Removes every value of `name`; returns how many were removed.
  size_t Remove(std::string_view name);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& entries() const { return entries_; }

  // Total serialized byte size ("Name: value\r\n" per entry); used by the
  // bandwidth-overhead accounting.
  size_t WireSize() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_HEADERS_H_
