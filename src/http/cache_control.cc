#include "src/http/cache_control.h"

#include "src/util/strings.h"

namespace robodet {

CacheDirectives ParseCacheControl(std::string_view value) {
  CacheDirectives out;
  for (const std::string& raw : Split(value, ',')) {
    const std::string token = AsciiLower(std::string(TrimWhitespace(raw)));
    if (token == "no-cache") {
      out.no_cache = true;
    } else if (token == "no-store") {
      out.no_store = true;
    } else if (token.rfind("max-age=", 0) == 0) {
      const auto age = ParseU64(std::string_view(token).substr(8));
      if (age.has_value()) {
        out.max_age = static_cast<long>(*age);
      }
    }
  }
  return out;
}

bool IsCacheable(const Response& response) {
  if (!Is2xx(response.status)) {
    return false;
  }
  const auto header = response.headers.Get("Cache-Control");
  if (!header.has_value()) {
    return true;  // Heuristic freshness, as HTTP/1.1 caches do.
  }
  const CacheDirectives d = ParseCacheControl(*header);
  if (d.no_cache || d.no_store) {
    return false;
  }
  return d.max_age != 0;
}

}  // namespace robodet
