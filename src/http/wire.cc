#include "src/http/wire.h"

#include "src/util/strings.h"

namespace robodet {
namespace {

// Consumes one line terminated by CRLF (or bare LF, which real traffic
// contains); returns the line without the terminator and advances `pos`.
std::optional<std::string_view> NextLine(std::string_view text, size_t& pos) {
  if (pos >= text.size()) {
    return std::nullopt;
  }
  const size_t lf = text.find('\n', pos);
  if (lf == std::string_view::npos) {
    return std::nullopt;
  }
  size_t end = lf;
  if (end > pos && text[end - 1] == '\r') {
    --end;
  }
  std::string_view line = text.substr(pos, end - pos);
  pos = lf + 1;
  return line;
}

// Parses the header block starting at `pos`; stops after the blank line.
// Returns false (with error filled) on syntactically broken headers.
bool ParseHeaderBlock(std::string_view text, size_t& pos, Headers* headers,
                      WireParseError* error) {
  size_t count = 0;
  for (;;) {
    const size_t line_start = pos;
    const auto line = NextLine(text, pos);
    if (!line.has_value()) {
      error->message = "truncated header block (no blank line)";
      error->offset = line_start;
      return false;
    }
    if (line->empty()) {
      return true;  // End of headers.
    }
    if (line->size() > kMaxWireLineBytes) {
      error->message = "header line exceeds limit";
      error->offset = line_start;
      return false;
    }
    if (++count > kMaxWireHeaderCount) {
      error->message = "too many header lines";
      error->offset = line_start;
      return false;
    }
    const size_t colon = line->find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error->message = "malformed header line";
      error->offset = line_start;
      return false;
    }
    const std::string_view name = TrimWhitespace(line->substr(0, colon));
    const std::string_view value = TrimWhitespace(line->substr(colon + 1));
    if (name.empty() || name.find(' ') != std::string_view::npos) {
      error->message = "malformed header name";
      error->offset = line_start;
      return false;
    }
    headers->Add(name, value);
  }
}

bool IsHttpVersion(std::string_view token) {
  return token == "HTTP/1.0" || token == "HTTP/1.1";
}

}  // namespace

WireResult<Request> ParseRequestText(std::string_view text) {
  WireResult<Request> result;
  size_t pos = 0;
  const auto start_line = NextLine(text, pos);
  if (!start_line.has_value()) {
    result.error = {"missing request line", 0};
    return result;
  }
  if (start_line->size() > kMaxWireLineBytes) {
    result.error = {"request line exceeds limit", 0};
    return result;
  }
  const std::vector<std::string> parts = Split(*start_line, ' ');
  if (parts.size() != 3) {
    result.error = {"request line must be 'METHOD target HTTP/1.x'", 0};
    return result;
  }
  const auto method = ParseMethod(parts[0]);
  if (!method.has_value()) {
    result.error = {"unknown method '" + parts[0] + "'", 0};
    return result;
  }
  if (!IsHttpVersion(parts[2])) {
    result.error = {"unsupported protocol version '" + parts[2] + "'", 0};
    return result;
  }

  Request request;
  request.method = *method;
  if (!ParseHeaderBlock(text, pos, &request.headers, &result.error)) {
    return result;
  }

  // Resolve the target: absolute form, or origin form + Host header.
  const std::string& target = parts[1];
  if (auto absolute = Url::Parse(target); absolute.has_value()) {
    request.url = *absolute;
  } else if (!target.empty() && target[0] == '/') {
    const auto host = request.headers.Get("Host");
    if (!host.has_value() || host->empty()) {
      result.error = {"origin-form target without Host header", 0};
      return result;
    }
    // Host may carry a port.
    const std::string host_str(*host);
    const auto with_host = Url::Parse("http://" + host_str + target);
    if (!with_host.has_value()) {
      result.error = {"unparseable Host + target combination", 0};
      return result;
    }
    request.url = *with_host;
  } else {
    result.error = {"unsupported request target '" + target + "'", 0};
    return result;
  }
  // Body: everything after the blank line, trimmed by Content-Length.
  std::string_view body = text.substr(pos);
  if (const auto cl = request.headers.Get("Content-Length"); cl.has_value()) {
    if (const auto n = ParseU64(*cl); n.has_value() && *n <= body.size()) {
      body = body.substr(0, *n);
    }
  }
  if (body.size() > kMaxWireBodyBytes) {
    result.error = {"body exceeds limit", pos};
    return result;
  }
  request.body = std::string(body);
  result.value = std::move(request);
  return result;
}

WireResult<Response> ParseResponseText(std::string_view text) {
  WireResult<Response> result;
  size_t pos = 0;
  const auto status_line = NextLine(text, pos);
  if (!status_line.has_value()) {
    result.error = {"missing status line", 0};
    return result;
  }
  if (status_line->size() > kMaxWireLineBytes) {
    result.error = {"status line exceeds limit", 0};
    return result;
  }
  const std::vector<std::string> parts = Split(*status_line, ' ');
  if (parts.size() < 2 || !IsHttpVersion(parts[0])) {
    result.error = {"status line must be 'HTTP/1.x NNN [reason]'", 0};
    return result;
  }
  const auto code = ParseU64(parts[1]);
  if (!code.has_value() || *code < 100 || *code > 599) {
    result.error = {"invalid status code '" + parts[1] + "'", 0};
    return result;
  }

  Response response;
  response.status = static_cast<StatusCode>(*code);
  if (!ParseHeaderBlock(text, pos, &response.headers, &result.error)) {
    return result;
  }
  if (const auto te = response.headers.Get("Transfer-Encoding");
      te.has_value() && ContainsIgnoreCase(*te, "chunked")) {
    result.error = {"chunked transfer encoding not supported", pos};
    return result;
  }
  std::string_view body = text.substr(pos);
  if (const auto cl = response.headers.Get("Content-Length"); cl.has_value()) {
    if (const auto n = ParseU64(*cl); n.has_value() && *n <= body.size()) {
      body = body.substr(0, *n);
    }
  }
  if (body.size() > kMaxWireBodyBytes) {
    result.error = {"body exceeds limit", pos};
    return result;
  }
  response.body = std::string(body);
  result.value = std::move(response);
  return result;
}

std::string SerializeRequest(const Request& request) {
  std::string out;
  out += MethodName(request.method);
  out += ' ';
  out += request.url.ToString();
  out += " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(StatusValue(response.status));
  out += ' ';
  out += ReasonPhrase(response.status);
  out += "\r\n";
  for (const auto& [name, value] : response.headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace robodet
