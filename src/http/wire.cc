#include "src/http/wire.h"

#include "src/util/strings.h"

namespace robodet {
namespace {

// Consumes one line terminated by CRLF (or bare LF, which real traffic
// contains); returns the line without the terminator and advances `pos`.
std::optional<std::string_view> NextLine(std::string_view text, size_t& pos) {
  if (pos >= text.size()) {
    return std::nullopt;
  }
  const size_t lf = text.find('\n', pos);
  if (lf == std::string_view::npos) {
    return std::nullopt;
  }
  size_t end = lf;
  if (end > pos && text[end - 1] == '\r') {
    --end;
  }
  std::string_view line = text.substr(pos, end - pos);
  pos = lf + 1;
  return line;
}

// Parses the header block starting at `pos`; stops after the blank line.
// Returns false (with error filled) on syntactically broken headers.
bool ParseHeaderBlock(std::string_view text, size_t& pos, Headers* headers,
                      WireParseError* error) {
  size_t count = 0;
  for (;;) {
    const size_t line_start = pos;
    const auto line = NextLine(text, pos);
    if (!line.has_value()) {
      error->message = "truncated header block (no blank line)";
      error->offset = line_start;
      return false;
    }
    if (line->empty()) {
      return true;  // End of headers.
    }
    if (line->size() > kMaxWireLineBytes) {
      error->message = "header line exceeds limit";
      error->offset = line_start;
      return false;
    }
    if (++count > kMaxWireHeaderCount) {
      error->message = "too many header lines";
      error->offset = line_start;
      return false;
    }
    const size_t colon = line->find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error->message = "malformed header line";
      error->offset = line_start;
      return false;
    }
    const std::string_view name = TrimWhitespace(line->substr(0, colon));
    const std::string_view value = TrimWhitespace(line->substr(colon + 1));
    if (name.empty() || name.find(' ') != std::string_view::npos) {
      error->message = "malformed header name";
      error->offset = line_start;
      return false;
    }
    headers->Add(name, value);
  }
}

bool IsHttpVersion(std::string_view token) {
  return token == "HTTP/1.0" || token == "HTTP/1.1";
}

// Parses the hex chunk size at the start of a chunk-size line, stopping at
// a chunk extension (";ext") if present. Rejects junk and overflow.
std::optional<uint64_t> ParseChunkSize(std::string_view line) {
  const size_t semi = line.find(';');
  std::string_view digits = TrimWhitespace(
      semi == std::string_view::npos ? line : line.substr(0, semi));
  if (digits.empty()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (const char c : digits) {
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (value > (UINT64_MAX >> 4)) {
      return std::nullopt;  // Overflow.
    }
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  return value;
}

// Decodes a chunked body starting at `pos`: chunks are concatenated into
// `out_body`, trailer fields are appended to `headers`. Fails on hostile
// or truncated input; the decoded total is capped at kMaxWireBodyBytes.
bool DecodeChunkedBody(std::string_view text, size_t& pos, std::string* out_body,
                       Headers* headers, WireParseError* error) {
  for (;;) {
    const size_t line_start = pos;
    const auto size_line = NextLine(text, pos);
    if (!size_line.has_value()) {
      error->message = "truncated chunked body (no chunk-size line)";
      error->offset = line_start;
      return false;
    }
    if (size_line->size() > kMaxWireLineBytes) {
      error->message = "chunk-size line exceeds limit";
      error->offset = line_start;
      return false;
    }
    const auto chunk_size = ParseChunkSize(*size_line);
    if (!chunk_size.has_value()) {
      error->message = "malformed chunk size";
      error->offset = line_start;
      return false;
    }
    if (*chunk_size == 0) {
      // Trailer section: header fields until the final blank line.
      return ParseHeaderBlock(text, pos, headers, error);
    }
    if (*chunk_size > kMaxWireBodyBytes ||
        out_body->size() + *chunk_size > kMaxWireBodyBytes) {
      error->message = "chunked body exceeds limit";
      error->offset = line_start;
      return false;
    }
    if (pos + *chunk_size > text.size()) {
      error->message = "truncated chunk data";
      error->offset = pos;
      return false;
    }
    out_body->append(text.substr(pos, *chunk_size));
    pos += *chunk_size;
    // The CRLF (or bare LF) closing the chunk data.
    if (pos < text.size() && text[pos] == '\r') {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '\n') {
      error->message = "chunk data not terminated by CRLF";
      error->offset = pos;
      return false;
    }
    ++pos;
  }
}

// Serializes start line + headers + body with accurate identity framing:
// hop-by-hop framing headers are replaced, not echoed.
void AppendFramedMessage(std::string& out, const Headers& headers, const std::string& body,
                         bool emit_content_length) {
  for (const auto& [name, value] : headers.entries()) {
    if (EqualsIgnoreCase(name, "Content-Length") || EqualsIgnoreCase(name, "Transfer-Encoding")) {
      continue;
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (emit_content_length) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
}

}  // namespace

bool WantKeepAlive(const Headers& headers, bool http11) {
  const auto connection = headers.Get("Connection");
  if (connection.has_value()) {
    for (const std::string& token : Split(*connection, ',')) {
      const std::string_view trimmed = TrimWhitespace(token);
      if (EqualsIgnoreCase(trimmed, "close")) {
        return false;
      }
      if (EqualsIgnoreCase(trimmed, "keep-alive")) {
        return true;
      }
    }
  }
  return http11;
}

WireResult<Request> ParseRequestText(std::string_view text) {
  WireResult<Request> result;
  size_t pos = 0;
  const auto start_line = NextLine(text, pos);
  if (!start_line.has_value()) {
    result.error = {"missing request line", 0};
    return result;
  }
  if (start_line->size() > kMaxWireLineBytes) {
    result.error = {"request line exceeds limit", 0};
    return result;
  }
  const std::vector<std::string> parts = Split(*start_line, ' ');
  if (parts.size() != 3) {
    result.error = {"request line must be 'METHOD target HTTP/1.x'", 0};
    return result;
  }
  const auto method = ParseMethod(parts[0]);
  if (!method.has_value()) {
    result.error = {"unknown method '" + parts[0] + "'", 0};
    return result;
  }
  if (!IsHttpVersion(parts[2])) {
    result.error = {"unsupported protocol version '" + parts[2] + "'", 0};
    return result;
  }

  Request request;
  request.method = *method;
  if (!ParseHeaderBlock(text, pos, &request.headers, &result.error)) {
    return result;
  }

  // Resolve the target: absolute form, or origin form + Host header.
  const std::string& target = parts[1];
  if (auto absolute = Url::Parse(target); absolute.has_value()) {
    request.url = *absolute;
  } else if (!target.empty() && target[0] == '/') {
    const auto host = request.headers.Get("Host");
    if (!host.has_value() || host->empty()) {
      result.error = {"origin-form target without Host header", 0};
      return result;
    }
    // Host may carry a port.
    const std::string host_str(*host);
    const auto with_host = Url::Parse("http://" + host_str + target);
    if (!with_host.has_value()) {
      result.error = {"unparseable Host + target combination", 0};
      return result;
    }
    request.url = *with_host;
  } else {
    result.error = {"unsupported request target '" + target + "'", 0};
    return result;
  }
  // Body: everything after the blank line, trimmed by Content-Length.
  std::string_view body = text.substr(pos);
  if (const auto cl = request.headers.Get("Content-Length"); cl.has_value()) {
    if (const auto n = ParseU64(*cl); n.has_value() && *n <= body.size()) {
      body = body.substr(0, *n);
    }
  }
  if (body.size() > kMaxWireBodyBytes) {
    result.error = {"body exceeds limit", pos};
    return result;
  }
  request.body = std::string(body);
  result.value = std::move(request);
  return result;
}

WireResult<Response> ParseResponseText(std::string_view text) {
  WireResult<Response> result;
  size_t pos = 0;
  const auto status_line = NextLine(text, pos);
  if (!status_line.has_value()) {
    result.error = {"missing status line", 0};
    return result;
  }
  if (status_line->size() > kMaxWireLineBytes) {
    result.error = {"status line exceeds limit", 0};
    return result;
  }
  const std::vector<std::string> parts = Split(*status_line, ' ');
  if (parts.size() < 2 || !IsHttpVersion(parts[0])) {
    result.error = {"status line must be 'HTTP/1.x NNN [reason]'", 0};
    return result;
  }
  const auto code = ParseU64(parts[1]);
  if (!code.has_value() || *code < 100 || *code > 599) {
    result.error = {"invalid status code '" + parts[1] + "'", 0};
    return result;
  }

  Response response;
  response.status = static_cast<StatusCode>(*code);
  if (!ParseHeaderBlock(text, pos, &response.headers, &result.error)) {
    return result;
  }
  if (const auto te = response.headers.Get("Transfer-Encoding");
      te.has_value() && ContainsIgnoreCase(*te, "chunked")) {
    std::string decoded;
    if (!DecodeChunkedBody(text, pos, &decoded, &response.headers, &result.error)) {
      return result;
    }
    // Rewrite to identity framing so the record round-trips: the decoded
    // body is what every downstream consumer (rewriter, detectors,
    // serializer) sees.
    response.headers.Remove("Transfer-Encoding");
    response.headers.Set("Content-Length", std::to_string(decoded.size()));
    response.body = std::move(decoded);
    result.value = std::move(response);
    return result;
  }
  std::string_view body = text.substr(pos);
  if (const auto cl = response.headers.Get("Content-Length"); cl.has_value()) {
    if (const auto n = ParseU64(*cl); n.has_value() && *n <= body.size()) {
      body = body.substr(0, *n);
    }
  }
  if (body.size() > kMaxWireBodyBytes) {
    result.error = {"body exceeds limit", pos};
    return result;
  }
  response.body = std::string(body);
  result.value = std::move(response);
  return result;
}

std::string SerializeRequest(const Request& request) {
  std::string out;
  out += MethodName(request.method);
  out += ' ';
  out += request.url.ToString();
  out += " HTTP/1.1\r\n";
  // Bodyless requests stay Content-Length-free (a GET with "Content-Length:
  // 0" is legal but noisy); any actual body gets an accurate length.
  AppendFramedMessage(out, request.headers, request.body, !request.body.empty());
  return out;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "HTTP/1.1 ";
  const int status = StatusValue(response.status);
  out += std::to_string(status);
  out += ' ';
  out += ReasonPhrase(response.status);
  out += "\r\n";
  // 1xx/204/304 must not carry a body; everything else states its length
  // explicitly so a keep-alive peer can frame the next message.
  const bool bodyless = status < 200 || status == 204 || status == 304;
  AppendFramedMessage(out, response.headers, response.body,
                      !bodyless || !response.body.empty());
  return out;
}

}  // namespace robodet
