#include "src/http/headers.h"

#include "src/util/strings.h"

namespace robodet {

void Headers::Set(std::string_view name, std::string_view value) {
  Remove(name);
  entries_.emplace_back(std::string(name), std::string(value));
}

void Headers::Add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string_view> Headers::Get(std::string_view name) const {
  for (const auto& [k, v] : entries_) {
    if (EqualsIgnoreCase(k, name)) {
      return std::string_view(v);
    }
  }
  return std::nullopt;
}

std::vector<std::string_view> Headers::GetAll(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [k, v] : entries_) {
    if (EqualsIgnoreCase(k, name)) {
      out.emplace_back(v);
    }
  }
  return out;
}

size_t Headers::Remove(std::string_view name) {
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (EqualsIgnoreCase(it->first, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t Headers::WireSize() const {
  size_t total = 0;
  for (const auto& [k, v] : entries_) {
    total += k.size() + 2 + v.size() + 2;  // "k: v\r\n"
  }
  return total;
}

}  // namespace robodet
