// The fallible origin surface. The instrumenting proxy fronts an origin
// that can time out, refuse connections, reset mid-body, serve 5xx, or
// return bodies that cannot be trusted (truncated, oversized, or labeled
// text/html while plainly not HTML). OriginResult makes every one of those
// outcomes a typed value instead of an accident of control flow, so the
// resilience layer can decide retry/degrade/reject policy explicitly.
#ifndef ROBODET_SRC_HTTP_ORIGIN_RESULT_H_
#define ROBODET_SRC_HTTP_ORIGIN_RESULT_H_

#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "src/http/request.h"
#include "src/util/clock.h"

namespace robodet {

enum class OriginErrorKind {
  kTimeout,         // No response within the deadline.
  kConnectFail,     // TCP connect refused / DNS failure.
  kReset,           // Connection reset mid-transfer.
  kServerError,     // Origin answered with a 5xx (response attached).
  kTruncatedBody,   // Body shorter than the declared Content-Length.
  kOversizedBody,   // Body above the configured hard cap.
  kBadContentType,  // Claims text/html but the body is not markup.
};

std::string_view OriginErrorKindName(OriginErrorKind kind);

struct OriginError {
  OriginErrorKind kind = OriginErrorKind::kConnectFail;
};

// Outcome of one origin fetch attempt. `latency` is the simulated service
// time of the attempt (SimClock milliseconds); the resilience layer charges
// it against the per-request deadline. A result can carry both an error and
// a response: a 5xx is an error with the origin's own error page attached,
// which fail-open mode can still pass through to the client.
struct OriginResult {
  std::optional<Response> response;
  std::optional<OriginError> error;
  TimeMs latency = 0;

  bool ok() const { return !error.has_value(); }

  static OriginResult Ok(Response r, TimeMs latency = 0) {
    OriginResult out;
    out.response = std::move(r);
    out.latency = latency;
    return out;
  }

  static OriginResult Fail(OriginErrorKind kind, TimeMs latency = 0) {
    OriginResult out;
    out.error = OriginError{kind};
    out.latency = latency;
    return out;
  }
};

// A fallible origin: what ProxyServer actually consumes. Infallible
// handlers (plain Response-returning functions) are adapted via
// WrapInfallibleOrigin and never report errors.
using FallibleOriginHandler = std::function<OriginResult(const Request&)>;

FallibleOriginHandler WrapInfallibleOrigin(std::function<Response(const Request&)> origin);

// Client-facing stand-in for an origin failure the proxy could not recover
// from: 504 for timeouts, 502 for everything else.
Response SynthesizeOriginErrorResponse(OriginErrorKind kind);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_ORIGIN_RESULT_H_
