// HTTP/1.x wire format: parse raw request/response text into the robodet
// message records and serialize them back. This is the bridge an adopter
// needs between robodet's detectors and real bytes — a socket, a pcap, a
// stored capture. Parsing is strict about the envelope (start line, header
// syntax, CRLF discipline) and tolerant about content (unknown headers and
// methods for responses pass through untouched).
#ifndef ROBODET_SRC_HTTP_WIRE_H_
#define ROBODET_SRC_HTTP_WIRE_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/http/request.h"

namespace robodet {

// Hard limits on hostile input. Anything over these is rejected with a
// parse error, never partially swallowed: a proxy that buffers the whole
// message before parsing needs the bound to exist *somewhere*, and the
// parser is the last line of defense.
inline constexpr size_t kMaxWireLineBytes = 16 * 1024;   // Start line or one header line.
inline constexpr size_t kMaxWireHeaderCount = 256;       // Header lines per message.
inline constexpr size_t kMaxWireBodyBytes = 16u << 20;   // Body after the blank line.

struct WireParseError {
  std::string message;
  size_t offset = 0;  // Byte offset of the problem in the input.
};

template <typename T>
struct WireResult {
  std::optional<T> value;
  WireParseError error;  // Meaningful only when !value.
  explicit operator bool() const { return value.has_value(); }
};

// Parses "METHOD target HTTP/1.x\r\nheaders\r\n\r\nbody". The target may
// be an absolute URL (proxy form) or an origin-form path, in which case
// the Host header supplies the authority. `client_ip` and `time` are not
// on the wire; callers stamp them afterwards.
WireResult<Request> ParseRequestText(std::string_view text);

// Parses "HTTP/1.x NNN Reason\r\nheaders\r\n\r\nbody". The body is
// everything after the blank line (Content-Length, when present and sane,
// trims it). A `Transfer-Encoding: chunked` body is decoded: chunks are
// concatenated (each chunk-size line is bounded by kMaxWireLineBytes, the
// decoded total by kMaxWireBodyBytes), trailer fields are appended to the
// headers, and the message is rewritten to identity framing — the
// Transfer-Encoding header is dropped and Content-Length set to the
// decoded size, so re-serializing yields an equivalent, identity-framed
// message.
WireResult<Response> ParseResponseText(std::string_view text);

// Serialization, inverse of the above modulo header normalization. Both
// emit accurate framing: Content-Length is set to the actual body size
// (stale values are replaced, Transfer-Encoding is dropped) so a parse of
// the output recovers the same body — what the connection state machine
// relies on to frame messages on a keep-alive stream. Bodyless response
// statuses (1xx/204/304) omit Content-Length when the body is empty.
std::string SerializeRequest(const Request& request);
std::string SerializeResponse(const Response& response);

// `Connection` header semantics (RFC 7230 §6.1): an explicit "close" or
// "keep-alive" token wins; otherwise HTTP/1.1 defaults to keep-alive and
// HTTP/1.0 to close.
bool WantKeepAlive(const Headers& headers, bool http11);

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_WIRE_H_
