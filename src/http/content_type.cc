#include "src/http/content_type.h"

#include "src/util/strings.h"

namespace robodet {

ResourceKind ClassifyUrl(const Url& url) {
  if (EqualsIgnoreCase(url.Filename(), "favicon.ico")) {
    return ResourceKind::kFavicon;
  }
  if (EqualsIgnoreCase(url.path(), "/robots.txt")) {
    return ResourceKind::kRobotsTxt;
  }
  const std::string ext = url.Extension();
  if (ext == "cgi" || ext == "php" || ext == "asp" || ext == "aspx" || ext == "jsp" ||
      ContainsIgnoreCase(url.path(), "/cgi-bin/")) {
    return ResourceKind::kCgi;
  }
  if (url.has_query()) {
    // Query strings on non-script paths still indicate dynamic content.
    return ResourceKind::kCgi;
  }
  if (ext == "html" || ext == "htm" || ext == "xhtml" || ext.empty()) {
    return ResourceKind::kHtml;
  }
  if (ext == "css") {
    return ResourceKind::kCss;
  }
  if (ext == "js") {
    return ResourceKind::kJavaScript;
  }
  if (ext == "jpg" || ext == "jpeg" || ext == "png" || ext == "gif" || ext == "ico" ||
      ext == "bmp" || ext == "svg" || ext == "webp") {
    return ResourceKind::kImage;
  }
  if (ext == "wav" || ext == "mp3" || ext == "ogg" || ext == "au") {
    return ResourceKind::kAudio;
  }
  return ResourceKind::kOther;
}

std::string_view MimeTypeFor(ResourceKind k) {
  switch (k) {
    case ResourceKind::kHtml:
      return "text/html";
    case ResourceKind::kCss:
      return "text/css";
    case ResourceKind::kJavaScript:
      return "application/javascript";
    case ResourceKind::kImage:
      return "image/jpeg";
    case ResourceKind::kAudio:
      return "audio/wav";
    case ResourceKind::kFavicon:
      return "image/x-icon";
    case ResourceKind::kCgi:
      return "text/html";
    case ResourceKind::kRobotsTxt:
      return "text/plain";
    case ResourceKind::kOther:
      return "application/octet-stream";
  }
  return "application/octet-stream";
}

bool LooksLikeHtml(std::string_view body) {
  const size_t limit = body.size() < 256 ? body.size() : 256;
  for (size_t i = 0; i + 1 < limit; ++i) {
    if (body[i] != '<') {
      continue;
    }
    const char next = body[i + 1];
    if ((next >= 'a' && next <= 'z') || (next >= 'A' && next <= 'Z') || next == '!' ||
        next == '/') {
      return true;
    }
  }
  return false;
}

}  // namespace robodet
