// Resource-kind classification. Table 2's features ("% of HTML requests",
// "% of Image requests", "% of CGI requests", "% of favicon.ico requests")
// and the browser tests all key on this taxonomy.
#ifndef ROBODET_SRC_HTTP_CONTENT_TYPE_H_
#define ROBODET_SRC_HTTP_CONTENT_TYPE_H_

#include <string_view>

#include "src/http/url.h"

namespace robodet {

enum class ResourceKind {
  kHtml,
  kCss,
  kJavaScript,
  kImage,
  kAudio,
  kFavicon,
  kCgi,
  kRobotsTxt,
  kOther,
};

constexpr std::string_view ResourceKindName(ResourceKind k) {
  switch (k) {
    case ResourceKind::kHtml:
      return "html";
    case ResourceKind::kCss:
      return "css";
    case ResourceKind::kJavaScript:
      return "javascript";
    case ResourceKind::kImage:
      return "image";
    case ResourceKind::kAudio:
      return "audio";
    case ResourceKind::kFavicon:
      return "favicon";
    case ResourceKind::kCgi:
      return "cgi";
    case ResourceKind::kRobotsTxt:
      return "robots.txt";
    case ResourceKind::kOther:
      return "other";
  }
  return "other";
}

// Classifies from the URL alone (what a server sees at request time, before
// it has produced a response). Heuristics mirror CoDeeN's: CGI means a
// query string or a /cgi-bin/ or .php/.cgi/.asp path; favicon.ico is its
// own class; extension decides the rest; extension-less paths default to
// HTML, matching how sites serve directory indexes.
ResourceKind ClassifyUrl(const Url& url);

// MIME type the origin server attaches for a kind.
std::string_view MimeTypeFor(ResourceKind k);

// Content sniffer for the resilience layer: does a body that *claims* to be
// HTML plausibly contain markup? Scans the first 256 bytes for a '<'
// followed by a tag-ish character (letter, '!' or '/'). Origins that put
// text/html on binary payloads fail this check, and the proxy then serves
// the body pass-through instead of feeding garbage to the rewriter.
bool LooksLikeHtml(std::string_view body);

// True for the kinds a rendering browser fetches automatically as part of
// displaying a page (the paper's "embedded objects").
constexpr bool IsEmbeddedObjectKind(ResourceKind k) {
  return k == ResourceKind::kCss || k == ResourceKind::kJavaScript || k == ResourceKind::kImage ||
         k == ResourceKind::kAudio;
}

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_CONTENT_TYPE_H_
