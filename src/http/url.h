// Minimal URL model: enough of RFC 3986 for http/https origins, paths,
// queries and fragments. The detectors key on path shape (extension, CGI
// query, beacon key suffix), so parsing is exact for those parts.
#ifndef ROBODET_SRC_HTTP_URL_H_
#define ROBODET_SRC_HTTP_URL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace robodet {

class Url {
 public:
  Url() = default;

  // Parses an absolute http(s) URL. Returns nullopt on anything that is not
  // a well-formed absolute URL (the proxy treats those as malformed
  // requests, not as crashes).
  static std::optional<Url> Parse(std::string_view raw);

  // Builds from parts; path must begin with '/'.
  static Url Make(std::string_view host, std::string_view path, std::string_view query = "");

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  // Always begins with '/'.
  const std::string& path() const { return path_; }
  // Without the leading '?'; empty if absent.
  const std::string& query() const { return query_; }
  // Without the leading '#'; empty if absent.
  const std::string& fragment() const { return fragment_; }

  bool has_query() const { return has_query_; }

  // Lowercased final extension of the last path segment, without the dot;
  // empty if none ("/a/b.HTML" -> "html", "/a/b" -> "").
  std::string Extension() const;

  // Last path segment ("/a/b.css" -> "b.css", "/" -> "").
  std::string_view Filename() const;

  // Canonical string form; omits default ports.
  std::string ToString() const;

  // Resolves `ref` against this URL: absolute URLs pass through, "/x" is
  // host-relative, "x" is resolved against this URL's directory. Fragments
  // and queries in `ref` are honored.
  Url Resolve(std::string_view ref) const;

  friend bool operator==(const Url& a, const Url& b) {
    return a.scheme_ == b.scheme_ && a.host_ == b.host_ && a.port_ == b.port_ &&
           a.path_ == b.path_ && a.query_ == b.query_ && a.has_query_ == b.has_query_ &&
           a.fragment_ == b.fragment_;
  }

 private:
  std::string scheme_ = "http";
  std::string host_;
  uint16_t port_ = 80;
  std::string path_ = "/";
  std::string query_;
  bool has_query_ = false;
  std::string fragment_;
};

}  // namespace robodet

#endif  // ROBODET_SRC_HTTP_URL_H_
