#include "src/http/url.h"

#include "src/util/strings.h"

namespace robodet {
namespace {

bool IsValidHostChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '.' ||
         c == '-' || c == '_';
}

}  // namespace

std::optional<Url> Url::Parse(std::string_view raw) {
  Url url;
  const size_t scheme_end = raw.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return std::nullopt;
  }
  std::string scheme = AsciiLower(raw.substr(0, scheme_end));
  if (scheme != "http" && scheme != "https") {
    return std::nullopt;
  }
  url.scheme_ = scheme;
  url.port_ = scheme == "https" ? 443 : 80;

  std::string_view rest = raw.substr(scheme_end + 3);
  const size_t authority_end = rest.find_first_of("/?#");
  std::string_view authority =
      authority_end == std::string_view::npos ? rest : rest.substr(0, authority_end);
  if (authority.empty()) {
    return std::nullopt;
  }

  const size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port = ParseU64(authority.substr(colon + 1));
    if (!port.has_value() || *port == 0 || *port > 65535) {
      return std::nullopt;
    }
    url.port_ = static_cast<uint16_t>(*port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    return std::nullopt;
  }
  for (char c : authority) {
    if (!IsValidHostChar(c)) {
      return std::nullopt;
    }
  }
  url.host_ = AsciiLower(authority);

  if (authority_end == std::string_view::npos) {
    return url;
  }
  rest = rest.substr(authority_end);

  // Fragment first (it binds last in the grammar).
  const size_t hash = rest.find('#');
  if (hash != std::string_view::npos) {
    url.fragment_ = std::string(rest.substr(hash + 1));
    rest = rest.substr(0, hash);
  }
  const size_t qmark = rest.find('?');
  if (qmark != std::string_view::npos) {
    url.has_query_ = true;
    url.query_ = std::string(rest.substr(qmark + 1));
    rest = rest.substr(0, qmark);
  }
  url.path_ = rest.empty() ? "/" : std::string(rest);
  if (url.path_[0] != '/') {
    return std::nullopt;
  }
  return url;
}

Url Url::Make(std::string_view host, std::string_view path, std::string_view query) {
  Url url;
  url.host_ = AsciiLower(host);
  url.path_ = path.empty() ? "/" : std::string(path);
  if (!query.empty()) {
    url.has_query_ = true;
    url.query_ = std::string(query);
  }
  return url;
}

std::string Url::Extension() const {
  const std::string_view name = Filename();
  const size_t dot = name.rfind('.');
  if (dot == std::string_view::npos || dot + 1 == name.size()) {
    return "";
  }
  return AsciiLower(name.substr(dot + 1));
}

std::string_view Url::Filename() const {
  const size_t slash = path_.rfind('/');
  return std::string_view(path_).substr(slash + 1);
}

std::string Url::ToString() const {
  std::string out = scheme_;
  out += "://";
  out += host_;
  const bool default_port = (scheme_ == "http" && port_ == 80) ||
                            (scheme_ == "https" && port_ == 443);
  if (!default_port) {
    out += ':';
    out += std::to_string(port_);
  }
  out += path_;
  if (has_query_) {
    out += '?';
    out += query_;
  }
  if (!fragment_.empty()) {
    out += '#';
    out += fragment_;
  }
  return out;
}

Url Url::Resolve(std::string_view ref) const {
  if (ref.find("://") != std::string_view::npos) {
    if (auto abs = Parse(ref); abs.has_value()) {
      return *abs;
    }
    // Malformed absolute reference: fall back to self.
    return *this;
  }
  Url out = *this;
  out.fragment_.clear();
  out.query_.clear();
  out.has_query_ = false;

  std::string_view rest = ref;
  const size_t hash = rest.find('#');
  std::string fragment;
  if (hash != std::string_view::npos) {
    fragment = std::string(rest.substr(hash + 1));
    rest = rest.substr(0, hash);
  }
  const size_t qmark = rest.find('?');
  std::string query;
  bool has_query = false;
  if (qmark != std::string_view::npos) {
    has_query = true;
    query = std::string(rest.substr(qmark + 1));
    rest = rest.substr(0, qmark);
  }

  if (rest.empty()) {
    // Same document, possibly new query/fragment.
    out.path_ = path_;
  } else if (rest[0] == '/') {
    out.path_ = std::string(rest);
  } else {
    const size_t slash = path_.rfind('/');
    out.path_ = path_.substr(0, slash + 1) + std::string(rest);
  }
  out.query_ = std::move(query);
  out.has_query_ = has_query;
  out.fragment_ = std::move(fragment);
  return out;
}

}  // namespace robodet
