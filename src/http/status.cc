#include "src/http/status.h"

namespace robodet {

std::string_view ReasonPhrase(StatusCode s) {
  switch (s) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNoContent:
      return "No Content";
    case StatusCode::kMovedPermanently:
      return "Moved Permanently";
    case StatusCode::kFound:
      return "Found";
    case StatusCode::kNotModified:
      return "Not Modified";
    case StatusCode::kBadRequest:
      return "Bad Request";
    case StatusCode::kForbidden:
      return "Forbidden";
    case StatusCode::kNotFound:
      return "Not Found";
    case StatusCode::kRequestTimeout:
      return "Request Timeout";
    case StatusCode::kPayloadTooLarge:
      return "Payload Too Large";
    case StatusCode::kTooManyRequests:
      return "Too Many Requests";
    case StatusCode::kHeaderFieldsTooLarge:
      return "Request Header Fields Too Large";
    case StatusCode::kInternalServerError:
      return "Internal Server Error";
    case StatusCode::kBadGateway:
      return "Bad Gateway";
    case StatusCode::kServiceUnavailable:
      return "Service Unavailable";
    case StatusCode::kGatewayTimeout:
      return "Gateway Timeout";
  }
  return "Unknown";
}

}  // namespace robodet
