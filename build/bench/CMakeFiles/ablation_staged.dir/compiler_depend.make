# Empty compiler generated dependencies file for ablation_staged.
# This may be replaced when dependencies are built.
