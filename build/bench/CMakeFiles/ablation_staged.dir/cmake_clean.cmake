file(REMOVE_RECURSE
  "CMakeFiles/ablation_staged.dir/ablation_staged.cc.o"
  "CMakeFiles/ablation_staged.dir/ablation_staged.cc.o.d"
  "ablation_staged"
  "ablation_staged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
