# Empty dependencies file for ablation_decoys.
# This may be replaced when dependencies are built.
