file(REMOVE_RECURSE
  "CMakeFiles/ablation_decoys.dir/ablation_decoys.cc.o"
  "CMakeFiles/ablation_decoys.dir/ablation_decoys.cc.o.d"
  "ablation_decoys"
  "ablation_decoys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decoys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
