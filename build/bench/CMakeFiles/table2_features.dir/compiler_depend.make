# Empty compiler generated dependencies file for table2_features.
# This may be replaced when dependencies are built.
