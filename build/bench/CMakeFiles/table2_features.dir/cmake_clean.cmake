file(REMOVE_RECURSE
  "CMakeFiles/table2_features.dir/table2_features.cc.o"
  "CMakeFiles/table2_features.dir/table2_features.cc.o.d"
  "table2_features"
  "table2_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
