# Empty dependencies file for fig4_ml_accuracy.
# This may be replaced when dependencies are built.
