file(REMOVE_RECURSE
  "CMakeFiles/fig4_ml_accuracy.dir/fig4_ml_accuracy.cc.o"
  "CMakeFiles/fig4_ml_accuracy.dir/fig4_ml_accuracy.cc.o.d"
  "fig4_ml_accuracy"
  "fig4_ml_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ml_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
