file(REMOVE_RECURSE
  "CMakeFiles/fig3_complaints.dir/fig3_complaints.cc.o"
  "CMakeFiles/fig3_complaints.dir/fig3_complaints.cc.o.d"
  "fig3_complaints"
  "fig3_complaints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_complaints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
