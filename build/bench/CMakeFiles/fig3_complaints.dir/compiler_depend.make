# Empty compiler generated dependencies file for fig3_complaints.
# This may be replaced when dependencies are built.
