file(REMOVE_RECURSE
  "CMakeFiles/fig2_detection_cdf.dir/fig2_detection_cdf.cc.o"
  "CMakeFiles/fig2_detection_cdf.dir/fig2_detection_cdf.cc.o.d"
  "fig2_detection_cdf"
  "fig2_detection_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_detection_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
