# Empty dependencies file for fig2_detection_cdf.
# This may be replaced when dependencies are built.
