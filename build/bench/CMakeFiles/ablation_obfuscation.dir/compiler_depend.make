# Empty compiler generated dependencies file for ablation_obfuscation.
# This may be replaced when dependencies are built.
