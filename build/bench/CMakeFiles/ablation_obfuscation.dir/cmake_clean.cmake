file(REMOVE_RECURSE
  "CMakeFiles/ablation_obfuscation.dir/ablation_obfuscation.cc.o"
  "CMakeFiles/ablation_obfuscation.dir/ablation_obfuscation.cc.o.d"
  "ablation_obfuscation"
  "ablation_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
