# Empty dependencies file for table1_sessions.
# This may be replaced when dependencies are built.
