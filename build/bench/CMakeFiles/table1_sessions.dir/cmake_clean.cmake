file(REMOVE_RECURSE
  "CMakeFiles/table1_sessions.dir/table1_sessions.cc.o"
  "CMakeFiles/table1_sessions.dir/table1_sessions.cc.o.d"
  "table1_sessions"
  "table1_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
