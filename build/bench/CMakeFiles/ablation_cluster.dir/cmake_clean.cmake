file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster.dir/ablation_cluster.cc.o"
  "CMakeFiles/ablation_cluster.dir/ablation_cluster.cc.o.d"
  "ablation_cluster"
  "ablation_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
