# Empty compiler generated dependencies file for ablation_cluster.
# This may be replaced when dependencies are built.
