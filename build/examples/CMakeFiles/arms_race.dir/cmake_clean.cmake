file(REMOVE_RECURSE
  "CMakeFiles/arms_race.dir/arms_race.cpp.o"
  "CMakeFiles/arms_race.dir/arms_race.cpp.o.d"
  "arms_race"
  "arms_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arms_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
