# Empty dependencies file for arms_race.
# This may be replaced when dependencies are built.
