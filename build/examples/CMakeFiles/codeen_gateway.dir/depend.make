# Empty dependencies file for codeen_gateway.
# This may be replaced when dependencies are built.
