file(REMOVE_RECURSE
  "CMakeFiles/codeen_gateway.dir/codeen_gateway.cpp.o"
  "CMakeFiles/codeen_gateway.dir/codeen_gateway.cpp.o.d"
  "codeen_gateway"
  "codeen_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codeen_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
