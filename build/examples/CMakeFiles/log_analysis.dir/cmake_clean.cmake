file(REMOVE_RECURSE
  "CMakeFiles/log_analysis.dir/log_analysis.cpp.o"
  "CMakeFiles/log_analysis.dir/log_analysis.cpp.o.d"
  "log_analysis"
  "log_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
