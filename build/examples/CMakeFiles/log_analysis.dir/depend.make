# Empty dependencies file for log_analysis.
# This may be replaced when dependencies are built.
