# Empty dependencies file for ddos_defense.
# This may be replaced when dependencies are built.
