file(REMOVE_RECURSE
  "CMakeFiles/ddos_defense.dir/ddos_defense.cpp.o"
  "CMakeFiles/ddos_defense.dir/ddos_defense.cpp.o.d"
  "ddos_defense"
  "ddos_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
