file(REMOVE_RECURSE
  "CMakeFiles/html_injector_test.dir/html/injector_test.cc.o"
  "CMakeFiles/html_injector_test.dir/html/injector_test.cc.o.d"
  "html_injector_test"
  "html_injector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
