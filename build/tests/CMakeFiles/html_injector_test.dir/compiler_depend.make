# Empty compiler generated dependencies file for html_injector_test.
# This may be replaced when dependencies are built.
