# Empty dependencies file for token_minter_test.
# This may be replaced when dependencies are built.
