file(REMOVE_RECURSE
  "CMakeFiles/token_minter_test.dir/proxy/token_minter_test.cc.o"
  "CMakeFiles/token_minter_test.dir/proxy/token_minter_test.cc.o.d"
  "token_minter_test"
  "token_minter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_minter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
