# Empty dependencies file for attestation_test.
# This may be replaced when dependencies are built.
