file(REMOVE_RECURSE
  "CMakeFiles/attestation_test.dir/core/attestation_test.cc.o"
  "CMakeFiles/attestation_test.dir/core/attestation_test.cc.o.d"
  "attestation_test"
  "attestation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attestation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
