file(REMOVE_RECURSE
  "CMakeFiles/ml_adaboost_test.dir/ml/adaboost_test.cc.o"
  "CMakeFiles/ml_adaboost_test.dir/ml/adaboost_test.cc.o.d"
  "ml_adaboost_test"
  "ml_adaboost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_adaboost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
