# Empty compiler generated dependencies file for ml_adaboost_test.
# This may be replaced when dependencies are built.
