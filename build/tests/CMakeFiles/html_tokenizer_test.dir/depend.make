# Empty dependencies file for html_tokenizer_test.
# This may be replaced when dependencies are built.
