file(REMOVE_RECURSE
  "CMakeFiles/html_tokenizer_test.dir/html/tokenizer_test.cc.o"
  "CMakeFiles/html_tokenizer_test.dir/html/tokenizer_test.cc.o.d"
  "html_tokenizer_test"
  "html_tokenizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
