file(REMOVE_RECURSE
  "CMakeFiles/sim_experiment_test.dir/sim/experiment_test.cc.o"
  "CMakeFiles/sim_experiment_test.dir/sim/experiment_test.cc.o.d"
  "sim_experiment_test"
  "sim_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
