file(REMOVE_RECURSE
  "CMakeFiles/js_generator_test.dir/js/generator_test.cc.o"
  "CMakeFiles/js_generator_test.dir/js/generator_test.cc.o.d"
  "js_generator_test"
  "js_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
