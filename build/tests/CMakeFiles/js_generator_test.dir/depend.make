# Empty dependencies file for js_generator_test.
# This may be replaced when dependencies are built.
