# Empty dependencies file for html_fuzz_test.
# This may be replaced when dependencies are built.
