file(REMOVE_RECURSE
  "CMakeFiles/html_fuzz_test.dir/html/fuzz_test.cc.o"
  "CMakeFiles/html_fuzz_test.dir/html/fuzz_test.cc.o.d"
  "html_fuzz_test"
  "html_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
