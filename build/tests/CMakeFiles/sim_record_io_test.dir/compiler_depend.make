# Empty compiler generated dependencies file for sim_record_io_test.
# This may be replaced when dependencies are built.
