file(REMOVE_RECURSE
  "CMakeFiles/sim_record_io_test.dir/sim/record_io_test.cc.o"
  "CMakeFiles/sim_record_io_test.dir/sim/record_io_test.cc.o.d"
  "sim_record_io_test"
  "sim_record_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_record_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
