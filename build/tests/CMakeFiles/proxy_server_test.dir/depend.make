# Empty dependencies file for proxy_server_test.
# This may be replaced when dependencies are built.
