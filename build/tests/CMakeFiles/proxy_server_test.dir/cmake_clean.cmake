file(REMOVE_RECURSE
  "CMakeFiles/proxy_server_test.dir/proxy/proxy_server_test.cc.o"
  "CMakeFiles/proxy_server_test.dir/proxy/proxy_server_test.cc.o.d"
  "proxy_server_test"
  "proxy_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
