file(REMOVE_RECURSE
  "CMakeFiles/ml_features_test.dir/ml/features_test.cc.o"
  "CMakeFiles/ml_features_test.dir/ml/features_test.cc.o.d"
  "ml_features_test"
  "ml_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
