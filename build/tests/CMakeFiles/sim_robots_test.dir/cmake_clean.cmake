file(REMOVE_RECURSE
  "CMakeFiles/sim_robots_test.dir/sim/robots_test.cc.o"
  "CMakeFiles/sim_robots_test.dir/sim/robots_test.cc.o.d"
  "sim_robots_test"
  "sim_robots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_robots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
