file(REMOVE_RECURSE
  "CMakeFiles/request_test.dir/http/request_test.cc.o"
  "CMakeFiles/request_test.dir/http/request_test.cc.o.d"
  "request_test"
  "request_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
