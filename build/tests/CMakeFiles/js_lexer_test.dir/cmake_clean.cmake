file(REMOVE_RECURSE
  "CMakeFiles/js_lexer_test.dir/js/lexer_test.cc.o"
  "CMakeFiles/js_lexer_test.dir/js/lexer_test.cc.o.d"
  "js_lexer_test"
  "js_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
