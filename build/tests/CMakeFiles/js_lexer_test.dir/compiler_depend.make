# Empty compiler generated dependencies file for js_lexer_test.
# This may be replaced when dependencies are built.
