file(REMOVE_RECURSE
  "CMakeFiles/probe_variants_test.dir/proxy/probe_variants_test.cc.o"
  "CMakeFiles/probe_variants_test.dir/proxy/probe_variants_test.cc.o.d"
  "probe_variants_test"
  "probe_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
