file(REMOVE_RECURSE
  "CMakeFiles/js_interpreter_test.dir/js/interpreter_test.cc.o"
  "CMakeFiles/js_interpreter_test.dir/js/interpreter_test.cc.o.d"
  "js_interpreter_test"
  "js_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
