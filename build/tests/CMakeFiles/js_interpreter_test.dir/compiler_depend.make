# Empty compiler generated dependencies file for js_interpreter_test.
# This may be replaced when dependencies are built.
