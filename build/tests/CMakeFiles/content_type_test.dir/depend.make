# Empty dependencies file for content_type_test.
# This may be replaced when dependencies are built.
