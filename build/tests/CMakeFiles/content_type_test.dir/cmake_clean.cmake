file(REMOVE_RECURSE
  "CMakeFiles/content_type_test.dir/http/content_type_test.cc.o"
  "CMakeFiles/content_type_test.dir/http/content_type_test.cc.o.d"
  "content_type_test"
  "content_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
