file(REMOVE_RECURSE
  "CMakeFiles/clf_import_test.dir/sim/clf_import_test.cc.o"
  "CMakeFiles/clf_import_test.dir/sim/clf_import_test.cc.o.d"
  "clf_import_test"
  "clf_import_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clf_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
