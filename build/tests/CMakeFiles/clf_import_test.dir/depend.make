# Empty dependencies file for clf_import_test.
# This may be replaced when dependencies are built.
