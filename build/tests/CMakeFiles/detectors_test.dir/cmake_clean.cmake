file(REMOVE_RECURSE
  "CMakeFiles/detectors_test.dir/core/detectors_test.cc.o"
  "CMakeFiles/detectors_test.dir/core/detectors_test.cc.o.d"
  "detectors_test"
  "detectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
