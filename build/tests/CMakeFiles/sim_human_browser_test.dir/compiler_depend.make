# Empty compiler generated dependencies file for sim_human_browser_test.
# This may be replaced when dependencies are built.
