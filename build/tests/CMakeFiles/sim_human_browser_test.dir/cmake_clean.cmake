file(REMOVE_RECURSE
  "CMakeFiles/sim_human_browser_test.dir/sim/human_browser_test.cc.o"
  "CMakeFiles/sim_human_browser_test.dir/sim/human_browser_test.cc.o.d"
  "sim_human_browser_test"
  "sim_human_browser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_human_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
