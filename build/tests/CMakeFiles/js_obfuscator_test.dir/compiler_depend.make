# Empty compiler generated dependencies file for js_obfuscator_test.
# This may be replaced when dependencies are built.
