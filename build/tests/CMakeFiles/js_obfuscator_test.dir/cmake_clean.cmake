file(REMOVE_RECURSE
  "CMakeFiles/js_obfuscator_test.dir/js/obfuscator_test.cc.o"
  "CMakeFiles/js_obfuscator_test.dir/js/obfuscator_test.cc.o.d"
  "js_obfuscator_test"
  "js_obfuscator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_obfuscator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
