# Empty dependencies file for js_printer_transforms_test.
# This may be replaced when dependencies are built.
