file(REMOVE_RECURSE
  "CMakeFiles/js_printer_transforms_test.dir/js/printer_transforms_test.cc.o"
  "CMakeFiles/js_printer_transforms_test.dir/js/printer_transforms_test.cc.o.d"
  "js_printer_transforms_test"
  "js_printer_transforms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_printer_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
