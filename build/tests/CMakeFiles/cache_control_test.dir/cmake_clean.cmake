file(REMOVE_RECURSE
  "CMakeFiles/cache_control_test.dir/http/cache_control_test.cc.o"
  "CMakeFiles/cache_control_test.dir/http/cache_control_test.cc.o.d"
  "cache_control_test"
  "cache_control_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
