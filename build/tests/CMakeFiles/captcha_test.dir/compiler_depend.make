# Empty compiler generated dependencies file for captcha_test.
# This may be replaced when dependencies are built.
