file(REMOVE_RECURSE
  "CMakeFiles/captcha_test.dir/proxy/captcha_test.cc.o"
  "CMakeFiles/captcha_test.dir/proxy/captcha_test.cc.o.d"
  "captcha_test"
  "captcha_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/captcha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
