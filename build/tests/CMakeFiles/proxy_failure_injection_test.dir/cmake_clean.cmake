file(REMOVE_RECURSE
  "CMakeFiles/proxy_failure_injection_test.dir/proxy/failure_injection_test.cc.o"
  "CMakeFiles/proxy_failure_injection_test.dir/proxy/failure_injection_test.cc.o.d"
  "proxy_failure_injection_test"
  "proxy_failure_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_failure_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
