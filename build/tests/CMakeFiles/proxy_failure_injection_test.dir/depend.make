# Empty dependencies file for proxy_failure_injection_test.
# This may be replaced when dependencies are built.
