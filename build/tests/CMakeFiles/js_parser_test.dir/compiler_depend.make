# Empty compiler generated dependencies file for js_parser_test.
# This may be replaced when dependencies are built.
