file(REMOVE_RECURSE
  "CMakeFiles/js_parser_test.dir/js/parser_test.cc.o"
  "CMakeFiles/js_parser_test.dir/js/parser_test.cc.o.d"
  "js_parser_test"
  "js_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
