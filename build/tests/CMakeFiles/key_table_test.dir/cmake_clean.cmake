file(REMOVE_RECURSE
  "CMakeFiles/key_table_test.dir/proxy/key_table_test.cc.o"
  "CMakeFiles/key_table_test.dir/proxy/key_table_test.cc.o.d"
  "key_table_test"
  "key_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
