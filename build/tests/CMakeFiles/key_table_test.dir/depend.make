# Empty dependencies file for key_table_test.
# This may be replaced when dependencies are built.
