file(REMOVE_RECURSE
  "CMakeFiles/html_document_test.dir/html/document_test.cc.o"
  "CMakeFiles/html_document_test.dir/html/document_test.cc.o.d"
  "html_document_test"
  "html_document_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
