# Empty compiler generated dependencies file for html_document_test.
# This may be replaced when dependencies are built.
