file(REMOVE_RECURSE
  "CMakeFiles/url_test.dir/http/url_test.cc.o"
  "CMakeFiles/url_test.dir/http/url_test.cc.o.d"
  "url_test"
  "url_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
