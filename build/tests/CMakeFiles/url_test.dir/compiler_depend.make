# Empty compiler generated dependencies file for url_test.
# This may be replaced when dependencies are built.
