# Empty dependencies file for origin_server_test.
# This may be replaced when dependencies are built.
