file(REMOVE_RECURSE
  "CMakeFiles/origin_server_test.dir/site/origin_server_test.cc.o"
  "CMakeFiles/origin_server_test.dir/site/origin_server_test.cc.o.d"
  "origin_server_test"
  "origin_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origin_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
