# Empty dependencies file for site_model_test.
# This may be replaced when dependencies are built.
