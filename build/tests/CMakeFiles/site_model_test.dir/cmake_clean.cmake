file(REMOVE_RECURSE
  "CMakeFiles/site_model_test.dir/site/site_model_test.cc.o"
  "CMakeFiles/site_model_test.dir/site/site_model_test.cc.o.d"
  "site_model_test"
  "site_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
