file(REMOVE_RECURSE
  "CMakeFiles/pipeline_integration_test.dir/sim/pipeline_integration_test.cc.o"
  "CMakeFiles/pipeline_integration_test.dir/sim/pipeline_integration_test.cc.o.d"
  "pipeline_integration_test"
  "pipeline_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
