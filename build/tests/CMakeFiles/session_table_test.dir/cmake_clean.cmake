file(REMOVE_RECURSE
  "CMakeFiles/session_table_test.dir/proxy/session_table_test.cc.o"
  "CMakeFiles/session_table_test.dir/proxy/session_table_test.cc.o.d"
  "session_table_test"
  "session_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
