file(REMOVE_RECURSE
  "CMakeFiles/robodet_rewrite.dir/robodet_rewrite.cc.o"
  "CMakeFiles/robodet_rewrite.dir/robodet_rewrite.cc.o.d"
  "robodet_rewrite"
  "robodet_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robodet_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
