# Empty compiler generated dependencies file for robodet_rewrite.
# This may be replaced when dependencies are built.
