file(REMOVE_RECURSE
  "CMakeFiles/robodet_capture.dir/robodet_capture.cc.o"
  "CMakeFiles/robodet_capture.dir/robodet_capture.cc.o.d"
  "robodet_capture"
  "robodet_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robodet_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
