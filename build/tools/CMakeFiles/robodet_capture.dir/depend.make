# Empty dependencies file for robodet_capture.
# This may be replaced when dependencies are built.
