file(REMOVE_RECURSE
  "CMakeFiles/robodet_analyze.dir/robodet_analyze.cc.o"
  "CMakeFiles/robodet_analyze.dir/robodet_analyze.cc.o.d"
  "robodet_analyze"
  "robodet_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robodet_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
