# Empty dependencies file for robodet_analyze.
# This may be replaced when dependencies are built.
