file(REMOVE_RECURSE
  "librobodet.a"
)
