# Empty compiler generated dependencies file for robodet.
# This may be replaced when dependencies are built.
