
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attestation.cc" "src/CMakeFiles/robodet.dir/core/attestation.cc.o" "gcc" "src/CMakeFiles/robodet.dir/core/attestation.cc.o.d"
  "/root/repo/src/core/browser_test_detector.cc" "src/CMakeFiles/robodet.dir/core/browser_test_detector.cc.o" "gcc" "src/CMakeFiles/robodet.dir/core/browser_test_detector.cc.o.d"
  "/root/repo/src/core/combined_classifier.cc" "src/CMakeFiles/robodet.dir/core/combined_classifier.cc.o" "gcc" "src/CMakeFiles/robodet.dir/core/combined_classifier.cc.o.d"
  "/root/repo/src/core/human_activity_detector.cc" "src/CMakeFiles/robodet.dir/core/human_activity_detector.cc.o" "gcc" "src/CMakeFiles/robodet.dir/core/human_activity_detector.cc.o.d"
  "/root/repo/src/core/staged_pipeline.cc" "src/CMakeFiles/robodet.dir/core/staged_pipeline.cc.o" "gcc" "src/CMakeFiles/robodet.dir/core/staged_pipeline.cc.o.d"
  "/root/repo/src/html/document.cc" "src/CMakeFiles/robodet.dir/html/document.cc.o" "gcc" "src/CMakeFiles/robodet.dir/html/document.cc.o.d"
  "/root/repo/src/html/injector.cc" "src/CMakeFiles/robodet.dir/html/injector.cc.o" "gcc" "src/CMakeFiles/robodet.dir/html/injector.cc.o.d"
  "/root/repo/src/html/tokenizer.cc" "src/CMakeFiles/robodet.dir/html/tokenizer.cc.o" "gcc" "src/CMakeFiles/robodet.dir/html/tokenizer.cc.o.d"
  "/root/repo/src/http/cache_control.cc" "src/CMakeFiles/robodet.dir/http/cache_control.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/cache_control.cc.o.d"
  "/root/repo/src/http/content_type.cc" "src/CMakeFiles/robodet.dir/http/content_type.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/content_type.cc.o.d"
  "/root/repo/src/http/headers.cc" "src/CMakeFiles/robodet.dir/http/headers.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/headers.cc.o.d"
  "/root/repo/src/http/method.cc" "src/CMakeFiles/robodet.dir/http/method.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/method.cc.o.d"
  "/root/repo/src/http/request.cc" "src/CMakeFiles/robodet.dir/http/request.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/request.cc.o.d"
  "/root/repo/src/http/status.cc" "src/CMakeFiles/robodet.dir/http/status.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/status.cc.o.d"
  "/root/repo/src/http/url.cc" "src/CMakeFiles/robodet.dir/http/url.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/url.cc.o.d"
  "/root/repo/src/http/wire.cc" "src/CMakeFiles/robodet.dir/http/wire.cc.o" "gcc" "src/CMakeFiles/robodet.dir/http/wire.cc.o.d"
  "/root/repo/src/js/generator.cc" "src/CMakeFiles/robodet.dir/js/generator.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/generator.cc.o.d"
  "/root/repo/src/js/interpreter.cc" "src/CMakeFiles/robodet.dir/js/interpreter.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/interpreter.cc.o.d"
  "/root/repo/src/js/lexer.cc" "src/CMakeFiles/robodet.dir/js/lexer.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/lexer.cc.o.d"
  "/root/repo/src/js/obfuscator.cc" "src/CMakeFiles/robodet.dir/js/obfuscator.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/obfuscator.cc.o.d"
  "/root/repo/src/js/parser.cc" "src/CMakeFiles/robodet.dir/js/parser.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/parser.cc.o.d"
  "/root/repo/src/js/printer.cc" "src/CMakeFiles/robodet.dir/js/printer.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/printer.cc.o.d"
  "/root/repo/src/js/transforms.cc" "src/CMakeFiles/robodet.dir/js/transforms.cc.o" "gcc" "src/CMakeFiles/robodet.dir/js/transforms.cc.o.d"
  "/root/repo/src/ml/adaboost.cc" "src/CMakeFiles/robodet.dir/ml/adaboost.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/adaboost.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/robodet.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/robodet.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/evaluation.cc" "src/CMakeFiles/robodet.dir/ml/evaluation.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/evaluation.cc.o.d"
  "/root/repo/src/ml/features.cc" "src/CMakeFiles/robodet.dir/ml/features.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/features.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/robodet.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/robodet.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/robodet.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/proxy/captcha.cc" "src/CMakeFiles/robodet.dir/proxy/captcha.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/captcha.cc.o.d"
  "/root/repo/src/proxy/key_table.cc" "src/CMakeFiles/robodet.dir/proxy/key_table.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/key_table.cc.o.d"
  "/root/repo/src/proxy/policy.cc" "src/CMakeFiles/robodet.dir/proxy/policy.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/policy.cc.o.d"
  "/root/repo/src/proxy/proxy_server.cc" "src/CMakeFiles/robodet.dir/proxy/proxy_server.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/proxy_server.cc.o.d"
  "/root/repo/src/proxy/session.cc" "src/CMakeFiles/robodet.dir/proxy/session.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/session.cc.o.d"
  "/root/repo/src/proxy/session_table.cc" "src/CMakeFiles/robodet.dir/proxy/session_table.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/session_table.cc.o.d"
  "/root/repo/src/proxy/token_minter.cc" "src/CMakeFiles/robodet.dir/proxy/token_minter.cc.o" "gcc" "src/CMakeFiles/robodet.dir/proxy/token_minter.cc.o.d"
  "/root/repo/src/sim/clf_import.cc" "src/CMakeFiles/robodet.dir/sim/clf_import.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/clf_import.cc.o.d"
  "/root/repo/src/sim/cluster.cc" "src/CMakeFiles/robodet.dir/sim/cluster.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/cluster.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/robodet.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/gateway.cc" "src/CMakeFiles/robodet.dir/sim/gateway.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/gateway.cc.o.d"
  "/root/repo/src/sim/human_browser.cc" "src/CMakeFiles/robodet.dir/sim/human_browser.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/human_browser.cc.o.d"
  "/root/repo/src/sim/population.cc" "src/CMakeFiles/robodet.dir/sim/population.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/population.cc.o.d"
  "/root/repo/src/sim/record_io.cc" "src/CMakeFiles/robodet.dir/sim/record_io.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/record_io.cc.o.d"
  "/root/repo/src/sim/robots.cc" "src/CMakeFiles/robodet.dir/sim/robots.cc.o" "gcc" "src/CMakeFiles/robodet.dir/sim/robots.cc.o.d"
  "/root/repo/src/site/origin_server.cc" "src/CMakeFiles/robodet.dir/site/origin_server.cc.o" "gcc" "src/CMakeFiles/robodet.dir/site/origin_server.cc.o.d"
  "/root/repo/src/site/site_model.cc" "src/CMakeFiles/robodet.dir/site/site_model.cc.o" "gcc" "src/CMakeFiles/robodet.dir/site/site_model.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/robodet.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/robodet.dir/util/clock.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/robodet.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/robodet.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/robodet.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/robodet.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/robodet.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/robodet.dir/util/stats.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/robodet.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/robodet.dir/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
