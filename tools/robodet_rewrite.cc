// robodet_rewrite: instrument a single HTML document from a file or stdin
// and print the rewritten page — the §2 transformation in isolation, for
// eyeballing what the proxy actually injects.
//
// Usage:
//   robodet_rewrite [--in=page.html] [--host=www.example.com]
//       [--decoys=4] [--obf=2] [--seed=1] [--show-script]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/robodet.h"
#include "tools/flags.h"

using namespace robodet;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.errors().empty() || flags.GetBool("help")) {
    std::fprintf(stderr, "%s", flags.errors().c_str());
    std::fprintf(stderr,
                 "usage: robodet_rewrite [--in=page.html] [--host=H] [--decoys=M] "
                 "[--obf=0..4] [--seed=S] [--show-script]\n");
    return flags.GetBool("help") ? 0 : 2;
  }

  std::string html;
  if (flags.GetBool("in")) {
    std::ifstream in(flags.GetString("in", ""));
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", flags.GetString("in", "").c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    html = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    html = buffer.str();
  }

  const std::string host = flags.GetString("host", "www.example.com");
  const std::string prefix = "/__rd/";
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));

  // Generate the beacon exactly as the proxy would.
  BeaconSpec spec;
  spec.host = host;
  spec.path_prefix = prefix;
  spec.real_key = rng.HexKey128();
  const long decoys = flags.GetInt("decoys", 4);
  for (long i = 0; i < decoys; ++i) {
    spec.decoy_keys.push_back(rng.HexKey128());
  }
  spec.obfuscation_level = static_cast<int>(flags.GetInt("obf", 2));
  spec.pad_to_bytes = 1024;
  const GeneratedBeacon beacon = GenerateBeaconScript(spec, rng);

  TokenMinter minter(0xbeef, &rng);
  InjectionPlan plan;
  plan.beacon_script_url = "http://" + host + prefix + "js_" + minter.Mint() + ".js";
  plan.mouse_handler_code = beacon.handler_code;
  plan.ua_echo_script = GenerateUaEchoScript(host, prefix, minter.Mint());
  plan.css_probe_url = "http://" + host + prefix + "cp_" + minter.Mint() + ".css";
  plan.hidden_link_url = "http://" + host + prefix + "hl_" + minter.Mint() + ".html";
  plan.transparent_image_url = "http://" + host + prefix + "ti.jpg";

  const InjectionResult result = InstrumentHtml(html, plan);
  std::fputs(result.html.c_str(), stdout);

  std::fprintf(stderr,
               "\n-- robodet_rewrite: +%zu bytes; handler=\"%s\"; real beacon key %s "
               "(%ld decoys)\n",
               result.added_bytes, beacon.handler_code.c_str(), spec.real_key.c_str(),
               decoys);
  if (flags.GetBool("show-script")) {
    std::fprintf(stderr, "-- beacon script (%zu bytes):\n%s\n",
                 beacon.script_source.size(), beacon.script_source.c_str());
  }
  return 0;
}
