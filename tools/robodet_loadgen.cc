// robodet_loadgen: closed-loop HTTP/1.1 load against a robodet_serve (or
// any HTTP server) with throughput and latency quantile reporting.
//
//   robodet_loadgen --port=8080 --connections=8 --requests=200
//   robodet_loadgen --port=8080 --duration-ms=3000 --paths=/page/0.html,/page/1.html
//
// Exits nonzero when nothing completed (server down) so CI smoke jobs can
// gate on it directly.
#include <cstdio>

#include "src/net/loadgen.h"
#include "src/util/strings.h"
#include "tools/flags.h"

namespace robodet {
namespace {

constexpr char kUsage[] =
    "usage: robodet_loadgen --port=PORT [--target=127.0.0.1]\n"
    "       [--connections=4] [--requests=100] [--duration-ms=0]\n"
    "       [--paths=/,/page/0.html] [--user-agent=UA] [--host=localhost]\n"
    "       [--no-keep-alive] [--no-distinct-clients] [--think-ms=0]\n"
    "       [--key-values=PREFIX]   (emit bench key=value lines instead)\n";

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("help") || flags.GetInt("port", 0) == 0) {
    std::fputs(kUsage, stderr);
    return flags.GetBool("help") ? 0 : 1;
  }

  LoadGenConfig config;
  config.target_ip = flags.GetString("target", "127.0.0.1");
  config.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  config.connections = static_cast<int>(flags.GetInt("connections", 4));
  config.requests_per_connection = static_cast<int>(flags.GetInt("requests", 100));
  config.duration = flags.GetInt("duration-ms", 0);
  config.user_agent = flags.GetString("user-agent", "robodet-loadgen/1.0");
  config.host = flags.GetString("host", "localhost");
  config.keep_alive = !flags.GetBool("no-keep-alive");
  config.distinct_clients = !flags.GetBool("no-distinct-clients");
  config.think_time = flags.GetInt("think-ms", 0);
  const std::string paths = flags.GetString("paths", "/");
  config.paths.clear();
  for (const std::string& path : Split(paths, ',')) {
    if (!path.empty()) {
      config.paths.push_back(path);
    }
  }
  if (config.paths.empty()) {
    config.paths.push_back("/");
  }

  const LoadGenReport report = RunLoadGen(config);
  const std::string prefix = flags.GetString("key-values", "");
  if (!prefix.empty()) {
    std::fputs(report.KeyValues(prefix).c_str(), stdout);
  } else {
    std::fputs(report.Summary().c_str(), stdout);
  }
  const uint64_t completed = report.responses_2xx + report.responses_other;
  return completed > 0 ? 0 : 2;
}

}  // namespace
}  // namespace robodet

int main(int argc, char** argv) { return robodet::Main(argc, argv); }
