// Shared resilience/chaos flag wiring for tools that drive a live
// simulation, so the same knobs (fault schedule, breaker tuning, fail-open
// policy) behave identically in robodet_metrics, robodet_analyze --chaos,
// and robodet_capture.
#ifndef ROBODET_TOOLS_CHAOS_FLAGS_H_
#define ROBODET_TOOLS_CHAOS_FLAGS_H_

#include <cstdint>

#include "src/robodet.h"
#include "tools/flags.h"

namespace robodet {

inline constexpr char kChaosUsage[] =
    "       [--fault-rate=0] [--slow-rate=rate/2] [--corrupt-rate=rate/2]\n"
    "       [--fault-seed=1337] [--breaker-threshold=5]\n"
    "       [--breaker-cooldown-ms=30000] [--fail-closed] [--admission-rps=0]\n";

// Applies the chaos/resilience command-line knobs onto an experiment config.
// Unset flags keep the config's defaults.
inline void ApplyChaosFlags(const Flags& flags, ExperimentConfig* config) {
  const double fault_rate = flags.GetDouble("fault-rate", 0.0);
  config->faults.error_rate = fault_rate;
  config->faults.slow_rate = flags.GetDouble("slow-rate", fault_rate / 2.0);
  config->faults.corrupt_rate = flags.GetDouble("corrupt-rate", fault_rate / 2.0);
  config->faults.seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 1337));

  ResilienceConfig& resilience = config->proxy.resilience;
  resilience.breaker.failure_threshold = static_cast<int>(
      flags.GetInt("breaker-threshold", resilience.breaker.failure_threshold));
  resilience.breaker.open_duration = static_cast<TimeMs>(flags.GetInt(
      "breaker-cooldown-ms", static_cast<long>(resilience.breaker.open_duration)));
  resilience.fail_open = !flags.GetBool("fail-closed");
  resilience.admission_rps = static_cast<uint32_t>(
      flags.GetInt("admission-rps", resilience.admission_rps));
}

}  // namespace robodet

#endif  // ROBODET_TOOLS_CHAOS_FLAGS_H_
