// robodet_statedump: read-only inspector for a persistence state
// directory (snapshot.bin + journal.bin). Prints what each file holds
// and whether the pair is consistent; exit status makes it usable as a
// health check:
//
//   0  clean — both files validate, epochs match, no bytes dropped
//   1  damaged — something present is corrupt, torn, or mismatched
//   2  usage error
//
// Usage:
//   robodet_statedump --state-dir=DIR
//   robodet_statedump DIR
#include <cstdio>
#include <string>

#include "src/robodet.h"
#include "tools/flags.h"

using namespace robodet;

namespace {

const char* YesNo(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string state_dir = flags.GetString("state-dir", "");
  if (state_dir.empty() && !flags.positional().empty()) {
    state_dir = flags.positional().front();
  }
  if (!flags.errors().empty() || flags.GetBool("help") || state_dir.empty()) {
    std::fprintf(stderr, "%s", flags.errors().c_str());
    std::fprintf(stderr,
                 "usage: robodet_statedump --state-dir=DIR\n"
                 "       robodet_statedump DIR\n"
                 "exits 0 when the snapshot+journal pair is clean, 1 when\n"
                 "anything present is corrupt or torn, 2 on usage error.\n");
    return flags.GetBool("help") ? 0 : 2;
  }

  const InspectionResult result = InspectState(state_dir);

  std::printf("state dir: %s\n", state_dir.c_str());
  std::printf("snapshot:  present=%s valid=%s", YesNo(result.snapshot_present),
              YesNo(result.snapshot_valid));
  if (result.snapshot_valid) {
    std::printf(" epoch=%llu created_at=%lld keys=%zu sessions=%zu",
                static_cast<unsigned long long>(result.snapshot.epoch),
                static_cast<long long>(result.snapshot.created_at),
                result.snapshot.keys.size(), result.snapshot.sessions.size());
    if (result.snapshot.sections_dropped > 0) {
      std::printf(" sections_dropped=%zu/%zu", result.snapshot.sections_dropped,
                  result.snapshot.sections_total);
    }
  }
  std::printf("\n");
  std::printf("journal:   present=%s valid=%s", YesNo(result.journal_present),
              YesNo(result.journal_valid));
  if (result.journal_valid) {
    std::printf(" epoch=%llu records=%zu",
                static_cast<unsigned long long>(result.journal.epoch),
                result.journal.records.size());
    if (result.journal.records_dropped > 0) {
      std::printf(" records_dropped=%zu", result.journal.records_dropped);
    }
    if (result.journal.bytes_dropped > 0) {
      std::printf(" torn_tail_bytes=%zu", result.journal.bytes_dropped);
    }
  }
  std::printf("\n");
  if (result.snapshot_valid && result.journal_valid) {
    std::printf("epochs:    %s\n",
                result.epoch_match ? "match (journal extends snapshot)"
                                   : "mismatch (journal is stale or orphaned)");
  }
  std::printf("verdict:   %s\n", result.clean ? "clean" : "DAMAGED");
  return result.clean ? 0 : 1;
}
