// robodet_metrics: runs a mixed-population simulation through the
// instrumenting proxy and dumps what the observability layer collected —
// the Prometheus scrape or JSON snapshot of the metrics registry, plus
// (with --traces) the retained request traces.
//
// Usage:
//   robodet_metrics [--format=prom|json] [--clients=200] [--seed=1]
//       [--min-requests=10] [--traces] [--trace-capacity=128]
//       [--sample-every=64] [--policy]
//       [--fault-rate=R] [--slow-rate=R/2] [--corrupt-rate=R/2]
//       [--fault-seed=1337] [--breaker-threshold=5]
//       [--breaker-cooldown-ms=30000] [--fail-closed] [--admission-rps=0]
//       [--state-dir=DIR] [--snapshot-interval=8192] [--crash-rate=0]
//       [--crash-restart-ms=30000] [--crash-seed=4242]
//
// With --fault-rate the scrape shows the resilient path end-to-end:
// robodet_origin_* fetch outcomes, robodet_breaker_* trips and probes,
// and robodet_degraded_* ladder decisions. With --state-dir and
// --crash-rate it shows the durability path: robodet_node_restarts_total
// crashes, robodet_persistence_* journal activity, robodet_recovery_*
// salvage results.
#include <cstdio>

#include "src/robodet.h"
#include "tools/chaos_flags.h"
#include "tools/flags.h"
#include "tools/persistence_flags.h"

using namespace robodet;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.errors().empty() || flags.GetBool("help")) {
    std::fprintf(stderr, "%s", flags.errors().c_str());
    std::fprintf(stderr,
                 "usage: robodet_metrics [--format=prom|json] [--clients=200] "
                 "[--seed=1] [--min-requests=10] [--traces] "
                 "[--trace-capacity=128] [--sample-every=64] [--policy]\n%s%s",
                 kChaosUsage, kPersistenceUsage);
    return flags.GetBool("help") ? 0 : 2;
  }

  ExperimentConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.num_clients = static_cast<size_t>(flags.GetInt("clients", 200));
  config.proxy.enable_policy = flags.GetBool("policy");
  ApplyChaosFlags(flags, &config);
  ApplyPersistenceFlags(flags, &config);
  Experiment experiment(config);

  TraceRecorder::Config trace_config;
  trace_config.capacity = static_cast<size_t>(flags.GetInt("trace-capacity", 128));
  trace_config.sample_every = static_cast<size_t>(flags.GetInt("sample-every", 64));
  TraceRecorder tracer(trace_config);
  const bool want_traces = flags.GetBool("traces");
  if (want_traces) {
    experiment.proxy().set_trace_recorder(&tracer);
  }

  experiment.Run();

  // Closed sessions never went through ClassifySession (the proxy only
  // judges live ones), so feed the final observations through a classifier
  // bound to the same registry and record the verdicts the same way.
  MetricsRegistry& registry = experiment.proxy().metrics();
  CombinedClassifier classifier;
  classifier.BindMetrics(&registry);
  const int min_requests = static_cast<int>(flags.GetInt("min-requests", 10));
  for (const SessionRecord* record : experiment.RecordsWithMinRequests(min_requests)) {
    const Classification c = classifier.ClassifyOnline(record->observation);
    std::string source = "none";
    for (const Evidence& evidence : c.evidence) {
      if (evidence.points_to == c.verdict) {
        source = evidence.signal;
        break;
      }
    }
    registry
        .FindOrCreateCounter("robodet_verdict_total",
                             {{"class", std::string(VerdictName(c.verdict))},
                              {"source", source}})
        ->Inc();
  }

  const RegistrySnapshot snapshot = registry.Scrape();
  const std::string format = flags.GetString("format", "prom");
  if (format == "json") {
    std::printf("%s\n", ExportJson(snapshot).c_str());
  } else if (format == "prom") {
    std::printf("%s", ExportPrometheus(snapshot).c_str());
  } else {
    std::fprintf(stderr, "error: unknown --format=%s (want prom or json)\n", format.c_str());
    return 2;
  }

  if (want_traces) {
    const std::vector<RequestTrace> traces = tracer.Snapshot();
    if (format == "json") {
      std::printf("%s\n", ExportTracesJson(traces).c_str());
    } else {
      // Keep the stderr header out of the middle of stdout's block buffer
      // when both streams share a file (`tool > out 2>&1`).
      std::fflush(stdout);
      std::fprintf(stderr, "# traces: started=%llu retained=%zu evicted=%llu\n",
                   static_cast<unsigned long long>(tracer.started()), traces.size(),
                   static_cast<unsigned long long>(tracer.evicted()));
      for (const RequestTrace& trace : traces) {
        std::printf("%s", FormatTraceText(trace).c_str());
      }
    }
  }
  return 0;
}
