// robodet_analyze: offline analysis of a captured session log (the CSV
// pair robodet_capture writes, or one exported from a live deployment).
// Prints the Table-1-style signal breakdown, runs the combined and staged
// classifiers against the recorded signals, and — with --ml — trains and
// evaluates the §4.2 AdaBoost pipeline on the log's labels.
//
// Usage:
//   robodet_analyze --sessions=sessions.csv --events=events.csv
//       [--min-requests=10] [--ml] [--rounds=200] [--json-logs]
//   robodet_analyze --clf=access.log           # replay a real access log
//   robodet_analyze --chaos --fault-rate=0.2   # analyze a live faulted run
//
// --chaos skips the CSV input and instead drives a fresh simulation through
// the resilient serving path (same knobs as robodet_metrics: --fault-rate,
// --breaker-threshold, --fail-closed, ...), then analyzes the sessions it
// produced and reports how many servings the degradation ladder stepped down.
//
// --json-logs mirrors the analysis milestones to stderr as JSON Lines
// (machine-readable; the human report on stdout is unchanged).
#include <cstdio>

#include "src/robodet.h"
#include "tools/chaos_flags.h"
#include "tools/flags.h"

using namespace robodet;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.errors().empty() || flags.GetBool("help")) {
    std::fprintf(stderr, "%s", flags.errors().c_str());
    std::fprintf(stderr,
                 "usage: robodet_analyze --sessions=F --events=F "
                 "[--min-requests=10] [--ml] [--rounds=200] [--json-logs]\n"
                 "       robodet_analyze --chaos [--clients=500] [--seed=1] [--policy]\n%s",
                 kChaosUsage);
    return flags.GetBool("help") ? 0 : 2;
  }

  const bool json_logs = flags.GetBool("json-logs");
  if (json_logs) {
    SetStructuredLogSink(JsonLinesSink(stderr));
    SetLogLevel(LogLevel::kInfo);
  }

  std::vector<SessionRecord> log;
  if (flags.GetBool("clf")) {
    // Passive replay of a real access log: only the §4.2 ML features and
    // passive heuristics are available (no probes without a live proxy).
    const auto replay = ReplayClfFile(flags.GetString("clf", "access.log"));
    if (!replay.has_value()) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   flags.GetString("clf", "access.log").c_str());
      return 1;
    }
    std::printf("replayed %zu log lines (%zu malformed)\n", replay->lines_total,
                replay->lines_malformed);
    log = replay->records;
  } else if (flags.GetBool("chaos")) {
    ExperimentConfig config;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    config.num_clients = static_cast<size_t>(flags.GetInt("clients", 500));
    config.proxy.enable_policy = flags.GetBool("policy");
    ApplyChaosFlags(flags, &config);
    Experiment experiment(config);
    experiment.Run();
    const RegistrySnapshot snapshot = experiment.proxy().metrics().Scrape();
    uint64_t stepped_down = 0;
    for (const char* level : {"beacon_only", "pass_through", "fail_closed", "shed"}) {
      stepped_down += snapshot.CounterValue("robodet_degraded_total", {{"level", level}});
    }
    std::printf("chaos run: %llu requests, %llu injected origin faults, "
                "%llu servings below full instrumentation, %llu breaker trips\n",
                static_cast<unsigned long long>(
                    snapshot.CounterValue("robodet_requests_total")),
                static_cast<unsigned long long>(experiment.faults().counts().errors),
                static_cast<unsigned long long>(stepped_down),
                static_cast<unsigned long long>(snapshot.CounterValue(
                    "robodet_breaker_transitions_total", {{"to", "open"}})));
    if (json_logs) {
      ROBODET_LOG(kInfo)
          .With("requests", snapshot.CounterValue("robodet_requests_total"))
          .With("injected_faults", experiment.faults().counts().errors)
          .With("degraded_servings", stepped_down)
          .With("breaker_opens", snapshot.CounterValue("robodet_breaker_transitions_total",
                                                       {{"to", "open"}}))
          << "chaos_run";
    }
    log = experiment.records();
  } else {
    const std::string sessions_path = flags.GetString("sessions", "sessions.csv");
    const std::string events_path = flags.GetString("events", "events.csv");
    if (!ReadRecordsCsv(sessions_path, events_path, &log)) {
      std::fprintf(stderr, "error: failed to load %s / %s\n", sessions_path.c_str(),
                   events_path.c_str());
      return 1;
    }
  }
  const int min_requests = static_cast<int>(flags.GetInt("min-requests", 10));
  std::vector<const SessionRecord*> sessions;
  for (const SessionRecord& r : log) {
    if (r.request_count() > min_requests) {
      sessions.push_back(&r);
    }
  }
  std::printf("loaded %zu sessions (%zu with >%d requests)\n\n", log.size(), sessions.size(),
              min_requests);
  if (json_logs) {
    ROBODET_LOG(kInfo)
        .With("sessions_total", log.size())
        .With("sessions_analyzed", sessions.size())
        .With("min_requests", min_requests)
        << "loaded";
  }
  if (sessions.empty()) {
    return 0;
  }
  const double n = static_cast<double>(sessions.size());

  // Signal breakdown (Table 1 shape).
  size_t css = 0;
  size_t js = 0;
  size_t mouse = 0;
  size_t hidden = 0;
  size_t mismatch = 0;
  size_t captcha = 0;
  for (const SessionRecord* r : sessions) {
    const SessionSignals& sig = r->signals();
    css += sig.DownloadedCssProbe() ? 1 : 0;
    js += sig.ExecutedJs() ? 1 : 0;
    mouse += sig.MouseActivity() ? 1 : 0;
    hidden += sig.FollowedHiddenLink() ? 1 : 0;
    mismatch += sig.UaMismatch() ? 1 : 0;
    captcha += sig.PassedCaptcha() ? 1 : 0;
  }
  std::printf("signal breakdown:\n");
  std::printf("  downloaded CSS probe     %s\n", FormatPercent(css / n).c_str());
  std::printf("  executed JavaScript      %s\n", FormatPercent(js / n).c_str());
  std::printf("  mouse movement detected  %s\n", FormatPercent(mouse / n).c_str());
  std::printf("  passed CAPTCHA           %s\n", FormatPercent(captcha / n).c_str());
  std::printf("  followed hidden links    %s\n", FormatPercent(hidden / n).c_str());
  std::printf("  browser type mismatch    %s\n", FormatPercent(mismatch / n).c_str());
  if (json_logs) {
    ROBODET_LOG(kInfo)
        .With("css_probe", css / n)
        .With("executed_js", js / n)
        .With("mouse", mouse / n)
        .With("captcha", captcha / n)
        .With("hidden_link", hidden / n)
        .With("ua_mismatch", mismatch / n)
        << "signal_breakdown";
  }

  // Classifier outcomes vs. the log's ground-truth labels.
  CombinedClassifier classifier;
  ConfusionMatrix combined_cm;
  for (const SessionRecord* r : sessions) {
    const Verdict v = CombinedClassifier::SetAlgebraVerdict(r->signals());
    combined_cm.Add(r->truly_human ? kLabelHuman : kLabelRobot,
                    v == Verdict::kRobot ? kLabelRobot : kLabelHuman);
  }
  std::printf("\ncombined classifier (set algebra) vs. labels:\n");
  std::printf("  accuracy %s, humans misjudged %s, robots missed %s\n",
              FormatPercent(combined_cm.Accuracy()).c_str(),
              FormatPercent(combined_cm.HumanMisclassificationRate()).c_str(),
              FormatPercent(combined_cm.RobotMissRate()).c_str());
  if (json_logs) {
    ROBODET_LOG(kInfo)
        .With("accuracy", combined_cm.Accuracy())
        .With("human_misjudged", combined_cm.HumanMisclassificationRate())
        .With("robot_missed", combined_cm.RobotMissRate())
        << "combined_classifier";
  }

  if (flags.GetBool("ml")) {
    Dataset corpus;
    for (const SessionRecord* r : sessions) {
      Example e;
      e.x = ExtractFeatures(r->events);
      e.label = r->truly_human ? kLabelHuman : kLabelRobot;
      corpus.examples.push_back(e);
    }
    Rng rng(42);
    const TrainTestSplit split = StratifiedSplit(corpus, 0.5, rng);
    AdaBoost model(
        AdaBoost::Config{static_cast<int>(flags.GetInt("rounds", 200)), 1e-10});
    model.Train(split.train);
    const ConfusionMatrix test_cm = Evaluate(
        split.test, [&model](const FeatureVector& x) { return model.Predict(x); });
    const RocCurve roc =
        ComputeRoc(split.test, [&model](const FeatureVector& x) { return model.Score(x); });
    std::printf("\nAdaBoost (%ld rounds): test accuracy %s, AUC %.4f\n",
                flags.GetInt("rounds", 200), FormatPercent(test_cm.Accuracy(), 2).c_str(),
                roc.auc);
    if (json_logs) {
      ROBODET_LOG(kInfo)
          .With("rounds", flags.GetInt("rounds", 200))
          .With("test_accuracy", test_cm.Accuracy())
          .With("auc", roc.auc)
          << "adaboost";
    }
    auto importance = model.FeatureImportance();
    std::printf("top attributes:");
    for (int pick = 0; pick < 3; ++pick) {
      size_t best = 0;
      for (size_t f = 1; f < kNumFeatures; ++f) {
        if (importance[f] > importance[best]) {
          best = f;
        }
      }
      std::printf(" %s (%s)", std::string(FeatureName(best)).c_str(),
                  FormatPercent(importance[best]).c_str());
      importance[best] = -1.0;
    }
    std::printf("\n");
  }
  return 0;
}
