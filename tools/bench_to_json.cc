// Collects `key=value` lines emitted by the perf bench binaries
// (bench/rewrite_throughput, bench/scale) into one flat JSON object, and
// checks a fresh run against a committed baseline.
//
//   bench_to_json --out BENCH_proxy.json run1.txt run2.txt ...
//   bench_to_json --check BENCH_proxy.json fresh.json [--tolerance 0.15]
//
// Collect mode: every `key=value` line with a numeric value is kept (later
// files win on duplicate keys); everything else is ignored, so bench output
// can stay human-readable.
//
// Check mode: only keys prefixed `gate_` are compared — those are
// dimensionless ratios (speedups, scaling factors), meaningful across
// machines, unlike raw MB/s or req/s. Higher is better; the check fails if
// any gate in `fresh` is below baseline * (1 - tolerance), or missing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

// Reads key=value pairs from bench output or from the flat JSON this tool
// itself writes (the JSON is line-per-entry, so one tolerant reader covers
// both: strip quotes/commas/braces, split on '=' or ':').
std::map<std::string, double> ReadPairs(const std::string& path, bool* ok) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_to_json: cannot open %s\n", path.c_str());
    *ok = false;
    return out;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string cleaned;
    cleaned.reserve(line.size());
    for (char c : line) {
      if (c != '"' && c != ',' && c != '{' && c != '}' && c != ' ' && c != '\t') {
        cleaned += c;
      }
    }
    size_t sep = cleaned.find('=');
    if (sep == std::string::npos) {
      sep = cleaned.find(':');
    }
    if (sep == std::string::npos || sep == 0) {
      continue;
    }
    double value = 0.0;
    if (ParseNumber(cleaned.substr(sep + 1), &value)) {
      out[cleaned.substr(0, sep)] = value;
    }
  }
  *ok = true;
  return out;
}

int Collect(const std::string& out_path, const std::vector<std::string>& inputs) {
  std::map<std::string, double> merged;
  for (const std::string& path : inputs) {
    bool ok = false;
    std::map<std::string, double> pairs = ReadPairs(path, &ok);
    if (!ok) {
      return 1;
    }
    for (const auto& [key, value] : pairs) {
      merged[key] = value;
    }
  }
  if (merged.empty()) {
    std::fprintf(stderr, "bench_to_json: no key=value pairs found\n");
    return 1;
  }
  std::ostringstream json;
  json << "{\n";
  bool first = true;
  for (const auto& [key, value] : merged) {
    if (!first) {
      json << ",\n";
    }
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", value);
    json << "  \"" << key << "\": " << buf;
  }
  json << "\n}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_to_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::printf("wrote %s (%zu keys)\n", out_path.c_str(), merged.size());
  return 0;
}

int Check(const std::string& baseline_path, const std::string& fresh_path,
          double tolerance) {
  bool ok = false;
  const std::map<std::string, double> baseline = ReadPairs(baseline_path, &ok);
  if (!ok) {
    return 1;
  }
  const std::map<std::string, double> fresh = ReadPairs(fresh_path, &ok);
  if (!ok) {
    return 1;
  }
  int failures = 0;
  int gates = 0;
  for (const auto& [key, base_value] : baseline) {
    if (key.rfind("gate_", 0) != 0) {
      continue;
    }
    ++gates;
    const auto it = fresh.find(key);
    if (it == fresh.end()) {
      std::printf("FAIL %s: missing from %s\n", key.c_str(), fresh_path.c_str());
      ++failures;
      continue;
    }
    const double floor = base_value * (1.0 - tolerance);
    if (it->second < floor) {
      std::printf("FAIL %s: %.3f < %.3f (baseline %.3f - %.0f%%)\n", key.c_str(),
                  it->second, floor, base_value, tolerance * 100.0);
      ++failures;
    } else {
      std::printf("ok   %s: %.3f (baseline %.3f)\n", key.c_str(), it->second,
                  base_value);
    }
  }
  if (gates == 0) {
    std::printf("FAIL: baseline %s has no gate_ keys\n", baseline_path.c_str());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() >= 2 && args[0] == "--out") {
    return Collect(args[1], {args.begin() + 2, args.end()});
  }
  if (args.size() >= 3 && args[0] == "--check") {
    double tolerance = 0.15;
    if (args.size() >= 5 && args[3] == "--tolerance") {
      if (!ParseNumber(args[4], &tolerance)) {
        std::fprintf(stderr, "bench_to_json: bad tolerance %s\n", args[4].c_str());
        return 2;
      }
    }
    return Check(args[1], args[2], tolerance);
  }
  std::fprintf(stderr,
               "usage: bench_to_json --out OUT.json INPUT...\n"
               "       bench_to_json --check BASELINE.json FRESH.json "
               "[--tolerance 0.15]\n");
  return 2;
}
