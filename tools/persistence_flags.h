// Shared persistence/crash flag wiring, the durability counterpart of
// chaos_flags.h: the same knobs (state directory, checkpoint cadence,
// seeded crash schedule) behave identically in robodet_metrics and
// robodet_capture.
#ifndef ROBODET_TOOLS_PERSISTENCE_FLAGS_H_
#define ROBODET_TOOLS_PERSISTENCE_FLAGS_H_

#include <cstdint>

#include "src/robodet.h"
#include "tools/flags.h"

namespace robodet {

inline constexpr char kPersistenceUsage[] =
    "       [--state-dir=DIR] [--snapshot-interval=8192]\n"
    "       [--crash-rate=0] [--crash-restart-ms=30000] [--crash-seed=4242]\n";

// Applies the persistence/crash knobs onto an experiment config. With
// --state-dir the proxy journals its key/session tables there and
// recovers them after every simulated crash; --crash-rate (crashes per
// node per simulated hour) drives the seeded crash schedule. Unset flags
// keep the config's defaults.
inline void ApplyPersistenceFlags(const Flags& flags, ExperimentConfig* config) {
  config->proxy.persistence.state_dir = flags.GetString("state-dir", "");
  config->proxy.persistence.snapshot_interval_records = static_cast<uint64_t>(
      flags.GetInt("snapshot-interval",
                   static_cast<long>(config->proxy.persistence.snapshot_interval_records)));
  config->crashes.crash_rate_per_hour = flags.GetDouble("crash-rate", 0.0);
  config->crashes.restart_delay =
      static_cast<TimeMs>(flags.GetInt("crash-restart-ms", 30000));
  config->crashes.seed = static_cast<uint64_t>(flags.GetInt("crash-seed", 4242));
}

}  // namespace robodet

#endif  // ROBODET_TOOLS_PERSISTENCE_FLAGS_H_
