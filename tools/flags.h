// Tiny --key=value flag parser for the robodet command-line tools.
#ifndef ROBODET_TOOLS_FLAGS_H_
#define ROBODET_TOOLS_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace robodet {

class Flags {
 public:
  // Parses argv of the form --key=value or bare --key (value "1").
  // Non-flag arguments are collected in positional() for tools that take
  // them (robodet_statedump accepts a bare state directory).
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      const size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_[std::string(arg)] = "1";
      } else {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
  }

  std::string GetString(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  long GetInt(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::atol(it->second.c_str()) : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::atof(it->second.c_str()) : fallback;
  }

  bool GetBool(const std::string& key) const { return values_.contains(key); }

  const std::string& errors() const { return errors_; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string errors_;
};

}  // namespace robodet

#endif  // ROBODET_TOOLS_FLAGS_H_
