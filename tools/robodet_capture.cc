// robodet_capture: run a CoDeeN-style traffic simulation against the
// instrumenting proxy and export the labeled session log as CSV — the
// capture half of the operator workflow (robodet_analyze is the other).
//
// Usage:
//   robodet_capture --clients=2000 --seed=1 --sessions=sessions.csv
//       --events=events.csv [--captcha] [--policy] [--pages=200] [--decoys=4]
//       [--state-dir=DIR] [--snapshot-interval=8192] [--crash-rate=0]
//       [--crash-restart-ms=30000] [--crash-seed=4242]
#include <cstdio>

#include "src/robodet.h"
#include "tools/chaos_flags.h"
#include "tools/flags.h"
#include "tools/persistence_flags.h"

using namespace robodet;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.errors().empty() || flags.GetBool("help")) {
    std::fprintf(stderr, "%s", flags.errors().c_str());
    std::fprintf(stderr,
                 "usage: robodet_capture --clients=N --seed=S --sessions=F --events=F\n"
                 "       [--captcha] [--policy] [--pages=N] [--decoys=M]\n%s%s",
                 kChaosUsage, kPersistenceUsage);
    return flags.GetBool("help") ? 0 : 2;
  }

  ExperimentConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.num_clients = static_cast<size_t>(flags.GetInt("clients", 2000));
  config.site.num_pages = static_cast<size_t>(flags.GetInt("pages", 200));
  config.proxy.num_decoys = static_cast<size_t>(flags.GetInt("decoys", 4));
  config.proxy.enable_captcha = flags.GetBool("captcha");
  config.proxy.enable_policy = flags.GetBool("policy");
  ApplyChaosFlags(flags, &config);
  ApplyPersistenceFlags(flags, &config);
  if (config.proxy.enable_captcha) {
    config.mix.human_captcha_attempt_prob = 0.38;
  }

  std::printf("capturing: %zu clients, seed %llu%s%s...\n", config.num_clients,
              static_cast<unsigned long long>(config.seed),
              config.proxy.enable_captcha ? ", captcha on" : "",
              config.proxy.enable_policy ? ", policy on" : "");
  Experiment experiment(config);
  experiment.Run();

  const ProxyStats& stats = experiment.proxy().stats();
  std::printf("done: %zu sessions, %llu requests (%llu blocked), overhead %s\n",
              experiment.records().size(), static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.blocked_requests),
              FormatPercent(stats.OverheadFraction(), 2).c_str());

  const std::string sessions_path = flags.GetString("sessions", "sessions.csv");
  const std::string events_path = flags.GetString("events", "events.csv");
  if (!WriteSessionsCsv(sessions_path, experiment.records()) ||
      !WriteEventsCsv(events_path, experiment.records())) {
    std::fprintf(stderr, "error: failed to write %s / %s\n", sessions_path.c_str(),
                 events_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", sessions_path.c_str(), events_path.c_str());
  return 0;
}
