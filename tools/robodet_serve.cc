// robodet_serve: the detection proxy on a real TCP port. Wires the epoll
// front end (src/net) to a ProxyServer in concurrent mode over a generated
// origin site, stamps requests from a WallClock, and exposes the
// observability registry on an admin namespace:
//
//   robodet_serve --port=8080 --workers=4
//   curl http://127.0.0.1:8080/page/0.html
//   curl http://127.0.0.1:8080/__admin/metrics        # Prometheus text
//   curl http://127.0.0.1:8080/__admin/metrics.json
//   curl http://127.0.0.1:8080/__admin/traces.json
//
// SIGTERM/SIGINT drain gracefully: listeners close, in-flight requests
// finish with Connection: close, stragglers are cut at --drain-timeout-ms.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "src/robodet.h"
#include "src/util/hash.h"
#include "src/util/strings.h"
#include "tools/flags.h"

namespace robodet {
namespace {

constexpr char kUsage[] =
    "usage: robodet_serve [--port=8080] [--bind=127.0.0.1] [--workers=2]\n"
    "       [--max-connections=1024] [--site-pages=50] [--site-seed=31]\n"
    "       [--origin-rtt-us=0] [--trust-xff] [--enable-policy]\n"
    "       [--read-timeout-ms=10000] [--idle-timeout-ms=60000]\n"
    "       [--write-timeout-ms=10000] [--drain-timeout-ms=5000]\n"
    "       [--trace-sample=64] [--state-dir=DIR] [--snapshot-interval=8192]\n"
    "       [--run-ms=0]   (0 = serve until SIGTERM/SIGINT)\n";

Response AdminResponse(std::string body, const char* content_type) {
  Response response;
  response.status = StatusCode::kOk;
  response.headers.Set("Content-Type", content_type);
  response.body = std::move(body);
  return response;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("help")) {
    std::fputs(kUsage, stderr);
    return 0;
  }

  // Block the shutdown signals in every thread before any is spawned; a
  // dedicated sigwait thread turns them into a graceful drain instead of
  // an async-signal-context handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  // The one clock both layers read: requests are stamped and sessions
  // aged in real milliseconds since process start.
  WallClock clock;

  // Origin: a generated site, pre-rendered so the handler is callable
  // from every worker at once (OriginServer keeps mutable state; the
  // daemon's origin must not).
  SiteConfig site_config;
  site_config.num_pages = static_cast<size_t>(flags.GetInt("site-pages", 50));
  Rng site_rng(static_cast<uint64_t>(flags.GetInt("site-seed", 31)));
  SiteModel site = SiteModel::Generate(site_config, site_rng);
  std::vector<std::string> pages;
  pages.reserve(site_config.num_pages);
  for (size_t i = 0; i < site_config.num_pages; ++i) {
    pages.push_back(site.RenderPage(i));
  }
  const long origin_rtt_us = flags.GetInt("origin-rtt-us", 0);

  ProxyConfig proxy_config;
  proxy_config.host = site.host();
  proxy_config.concurrent = flags.GetInt("workers", 2) > 1;
  proxy_config.enable_policy = flags.GetBool("enable-policy");
  proxy_config.persistence.state_dir = flags.GetString("state-dir", "");
  proxy_config.persistence.snapshot_interval_records =
      static_cast<uint64_t>(flags.GetInt("snapshot-interval", 8192));
  ProxyServer proxy(
      proxy_config, &clock,
      FallibleOriginHandler([&pages, origin_rtt_us](const Request& r) {
        if (origin_rtt_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(origin_rtt_us));
        }
        return OriginResult::Ok(
            MakeHtmlResponse(pages[Fnv1a(r.url.path()) % pages.size()]));
      }),
      /*rng_seed=*/37);

  TraceRecorder tracer(TraceRecorder::Config{
      .capacity = 128,
      .sample_every = static_cast<uint32_t>(flags.GetInt("trace-sample", 64))});
  proxy.set_trace_recorder(&tracer);

  // The daemon's own classifier for the shed decision; the proxy's
  // ClassifySession would count a verdict per request into the registry.
  CombinedClassifier classifier;
  const bool trust_xff = flags.GetBool("trust-xff");

  // Two connections from one client can land on two workers (SO_REUSEPORT
  // spreads by 4-tuple); the proxy's session state assumes a client's
  // requests are served one at a time, so the handler serializes per
  // client -- see src/net/client_lock.h.
  StripedClientLock client_gate;

  NetHandler handler = [&](Request&& request, const ConnectionInfo&) -> ServedResponse {
    ServedResponse served;
    const std::string& path = request.url.path();
    if (path.rfind("/__admin/", 0) == 0) {
      // Admin namespace: never proxied, never instrumented.
      const RegistrySnapshot snapshot = proxy.metrics().Scrape();
      if (path == "/__admin/healthz") {
        served.response = AdminResponse("ok\n", "text/plain");
      } else if (path == "/__admin/metrics") {
        served.response =
            AdminResponse(ExportPrometheus(snapshot), "text/plain; version=0.0.4");
      } else if (path == "/__admin/metrics.json") {
        served.response = AdminResponse(ExportJson(snapshot), "application/json");
      } else if (path == "/__admin/traces.json") {
        served.response =
            AdminResponse(ExportTracesJson(tracer.Snapshot()), "application/json");
      } else {
        served.response.status = StatusCode::kNotFound;
        served.response.headers.Set("Content-Type", "text/plain");
        served.response.body = "unknown admin endpoint\n";
      }
      return served;
    }

    if (trust_xff) {
      // Loopback load tools stamp synthetic client addresses here so the
      // session table sees distinct visitors instead of one 127.0.0.1.
      if (const auto xff = request.headers.Get("X-Forwarded-For"); xff.has_value()) {
        const auto parsed = IpAddress::Parse(TrimWhitespace(Split(*xff, ',')[0]));
        if (parsed.has_value()) {
          request.client_ip = *parsed;
        }
      }
    }

    const SessionKey key{request.client_ip, std::string(request.UserAgent())};
    const auto hold = client_gate.Guard(request.client_ip);
    ProxyServer::Result result = proxy.Handle(request);
    served.response = std::move(result.response);
    // Robot flag for the socket layer's shed policy: classify the session
    // as it stands after this request.
    const SessionState* session = proxy.sessions().Touch(key, clock.Now());
    served.robot =
        classifier.ClassifyOnline(session->observation()).verdict == Verdict::kRobot;
    return served;
  };

  NetServerConfig net_config;
  net_config.bind_ip = flags.GetString("bind", "127.0.0.1");
  net_config.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  net_config.workers = static_cast<int>(flags.GetInt("workers", 2));
  net_config.max_connections = static_cast<size_t>(flags.GetInt("max-connections", 1024));
  net_config.limits.read_timeout = flags.GetInt("read-timeout-ms", 10000);
  net_config.limits.idle_timeout = flags.GetInt("idle-timeout-ms", 60000);
  net_config.limits.write_timeout = flags.GetInt("write-timeout-ms", 10000);
  net_config.drain_timeout = flags.GetInt("drain-timeout-ms", 5000);
  net_config.clock = &clock;

  NetServer server(net_config, std::move(handler));
  server.BindMetrics(&proxy.metrics());
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "robodet_serve: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "robodet_serve: listening on %s:%u (%d workers, host %s)\n",
               net_config.bind_ip.c_str(), server.port(), net_config.workers,
               proxy_config.host.c_str());

  // --run-ms: self-terminate for harnesses that cannot signal reliably.
  std::thread timer;
  const long run_ms = flags.GetInt("run-ms", 0);
  if (run_ms > 0) {
    timer = std::thread([run_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
      ::kill(::getpid(), SIGTERM);
    });
  }

  std::thread signal_thread([&sigs, &server] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::fprintf(stderr, "robodet_serve: %s, draining...\n", strsignal(sig));
    server.BeginDrain();
  });

  server.Wait();
  signal_thread.join();
  if (timer.joinable()) {
    timer.join();
  }

  const NetServer::Stats stats = server.GetStats();
  std::fprintf(stderr,
               "robodet_serve: done. accepted=%llu requests=%llu parse_errors=%llu "
               "shed=%llu timeouts=%llu\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.parse_errors),
               static_cast<unsigned long long>(stats.shed_rejected + stats.shed_evicted),
               static_cast<unsigned long long>(stats.timeouts_read + stats.timeouts_idle +
                                               stats.timeouts_write));
  return 0;
}

}  // namespace
}  // namespace robodet

int main(int argc, char** argv) { return robodet::Main(argc, argv); }
